// The Quit and Continue heuristics of Moffat & Zobel ("Fast ranking in
// limited space", ICDE 1994 — [MZ94] in the paper): instead of filtering
// by partial-score thresholds, these bound memory directly with a hard
// accumulator limit L.
//
//   Quit:     processing stops altogether the moment L accumulators
//             exist — remaining postings and whole remaining lists are
//             never read.
//   Continue: once L is reached no *new* accumulators are created, but
//             all remaining lists are still read so existing candidates
//             accumulate their full scores.
//
// Implemented as the "other query processing algorithms" the paper lists
// as future work; works on both frequency-sorted and document-ordered
// indexes (it never relies on within-list order).

#ifndef IRBUF_CORE_QUIT_CONTINUE_EVALUATOR_H_
#define IRBUF_CORE_QUIT_CONTINUE_EVALUATOR_H_

#include "buffer/buffer_pool.h"
#include "core/filtering_evaluator.h"
#include "core/query.h"
#include "index/inverted_index.h"
#include "util/status.h"

namespace irbuf::core {

/// What happens when the accumulator limit is hit.
enum class LimitMode { kQuit, kContinue };

/// Tuning of the quit/continue evaluators.
struct QuitContinueOptions {
  /// Hard bound on the candidate set size (the paper's memory metric).
  size_t accumulator_limit = 5000;
  LimitMode mode = LimitMode::kContinue;
  uint32_t top_n = 20;
  /// Optional structured event tracer (obs layer): term begin/end,
  /// grow->capped / grow->quit phase transitions and accumulator growth.
  /// Not owned; nullptr = untraced (no behavior change either way).
  obs::QueryTracer* tracer = nullptr;
};

/// Evaluates vector-space queries under a hard accumulator budget.
class QuitContinueEvaluator {
 public:
  QuitContinueEvaluator(const index::InvertedIndex* index,
                        QuitContinueOptions options)
      : index_(index), options_(options) {}

  /// Runs one query; terms are processed in decreasing-idf order, like
  /// DF, so the most selective terms claim the accumulator budget first.
  Result<EvalResult> Evaluate(const Query& query,
                              buffer::BufferPool* buffers) const;

  const QuitContinueOptions& options() const { return options_; }

 private:
  const index::InvertedIndex* index_;
  QuitContinueOptions options_;
};

}  // namespace irbuf::core

#endif  // IRBUF_CORE_QUIT_CONTINUE_EVALUATOR_H_
