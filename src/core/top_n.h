// Final answer selection: normalize accumulated scores by the document
// vector length W_d (step 5 of the algorithms) and return the n highest
// (step 6). IR systems restrict answers to a user-manageable n, typically
// 200 or fewer (Section 2.1).

#ifndef IRBUF_CORE_TOP_N_H_
#define IRBUF_CORE_TOP_N_H_

#include <cstdint>
#include <vector>

#include "core/accumulator_set.h"
#include "core/query.h"
#include "index/inverted_index.h"

namespace irbuf::core {

/// Returns the `n` highest normalized scores, descending (ties by doc id
/// ascending, for determinism). Uses a bounded min-heap: O(|A| log n).
std::vector<ScoredDoc> SelectTopN(const AccumulatorSet& accumulators,
                                  const index::InvertedIndex& index,
                                  uint32_t n);

}  // namespace irbuf::core

#endif  // IRBUF_CORE_TOP_N_H_
