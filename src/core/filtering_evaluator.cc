#include "core/filtering_evaluator.h"

#include <algorithm>

#include "core/scorer.h"
#include "core/top_n.h"
#include "fault/backoff.h"

namespace irbuf::core {

std::vector<QueryTerm> DfTermOrder(const Query& query,
                                   const index::Lexicon& lexicon) {
  std::vector<QueryTerm> order = query.terms();
  std::sort(order.begin(), order.end(),
            [&lexicon](const QueryTerm& a, const QueryTerm& b) {
              const index::TermInfo& ia = lexicon.info(a.term);
              const index::TermInfo& ib = lexicon.info(b.term);
              if (ia.idf != ib.idf) return ia.idf > ib.idf;
              if (ia.pages != ib.pages) return ia.pages < ib.pages;
              return a.term < b.term;
            });
  return order;
}

Status FilteringEvaluator::ProcessTerm(const QueryTerm& qt,
                                       buffer::BufferPool* buffers,
                                       AccumulatorSet* accumulators,
                                       double* smax, EvalResult* result,
                                       const EvalControl* control) const {
  obs::ScopedSpan term_span(options_.span_recorder,
                            obs::SpanStage::kTermLoop, qt.term);
  const index::TermInfo& info = index_->lexicon().info(qt.term);
  const Thresholds th = ComputeThresholds(options_.c_ins, options_.c_add,
                                          *smax, qt.fq, info.idf);
  obs::QueryTracer* const tracer = options_.tracer;
  TermTrace trace;
  trace.term = qt.term;
  trace.idf = info.idf;
  trace.total_pages = info.pages;
  trace.smax_before = *smax;
  trace.f_ins = th.f_ins;
  trace.f_add = th.f_add;

  // Step 4b / 3c: when even the term's highest frequency cannot pass the
  // addition threshold, no posting can contribute — skip the whole list
  // without any read.
  const bool below_add = static_cast<double>(info.fmax) <= th.f_add;
  if (below_add && !options_.always_read_first_page) {
    trace.skipped = true;
    trace.smax_after = *smax;
    ++result->terms_skipped;
    if (options_.record_trace) result->trace.push_back(trace);
    if (tracer != nullptr) {
      tracer->SkipTerm(qt.term, static_cast<double>(info.fmax), th.f_add);
    }
    return Status::OK();
  }
  if (tracer != nullptr) {
    tracer->BeginTerm(qt.term, info.pages, th.f_ins, th.f_add);
  }

  const double wq = QueryTermWeight(qt.fq, info.idf);

  // The early-exit of step 4(c)iv is only sound on frequency-sorted
  // lists; on a document-ordered index (the traditional layout the paper
  // contrasts against in footnote 14), low-frequency postings may be
  // followed by high-frequency ones, so the whole list must be scanned.
  const bool can_stop_early =
      index_->order() == index::IndexListOrder::kFrequencySorted;

  // Brownout rung 2: the page budget truncates the list like an early
  // f_add stop would, except the forfeited tail is accounted below.
  const uint32_t page_cap =
      (control != nullptr && control->max_pages_per_term > 0 &&
       control->max_pages_per_term < info.pages)
          ? control->max_pages_per_term
          : info.pages;

  // Readahead: the page loop below fetches pages 0..page_cap of this
  // term in order — evaluation knows its future — so hand the pool the
  // tail of that sequence as a plan. On frequency-sorted lists the plan
  // is clipped at the conversion table's PagesToProcess bound: pages
  // the f_add threshold (at the current Smax) proves the scan can never
  // reach are not worth reading ahead. Clipping is rank-safe because a
  // plan is a pure hint — every page actually touched still arrives
  // through FetchPinned below, and Smax only grows, so the bound only
  // overestimates the pages the scan will demand. Guarded on
  // PrefetchDepth so a pool without readahead pays nothing here.
  if (buffers->PrefetchDepth() > 0) {
    uint32_t plan_end = page_cap;
    if (can_stop_early) {
      plan_end = std::min(plan_end, index_->conversion_table().PagesToProcess(
                                        qt.term, th.f_add, info.pages,
                                        info.fmax));
    }
    if (plan_end > 1) {
      std::vector<PageId> plan;
      plan.reserve(plan_end - 1);
      // Page 0 is demanded immediately; prefetching it would just race
      // the fetch (coalescing would merge them, but why queue it).
      for (uint32_t page_no = 1; page_no < plan_end; ++page_no) {
        plan.push_back(PageId{qt.term, page_no});
      }
      buffers->Prefetch(buffer::PageAccessPlan(plan.data(), plan.size()));
    }
  }

  bool stop = false;
  // Phase tracking for the tracer: "ins" while postings pass f_ins,
  // "add" once they only pass f_add, "drop" when processing stops.
  // Frequencies are nonincreasing within a list, so phases never revert.
  const char* phase = "ins";
  for (uint32_t page_no = 0; page_no < page_cap && !stop; ++page_no) {
    // The pin is scoped to this iteration: released before the next
    // page is fetched, so at most one page per query is pinned and
    // victim selection at fetch time sees no pins from this reader.
    Result<buffer::PinnedPage> page = [&] {
      // kPagePin covers the pool's whole fetch: stripe lookup, policy
      // latch, and (on a miss) the nested kMissRead the pool records.
      obs::ScopedSpan pin_span(options_.span_recorder,
                               obs::SpanStage::kPagePin, qt.term);
      return buffers->FetchPinned(PageId{qt.term, page_no});
    }();
    if (!page.ok()) {
      const StatusCode code = page.status().code();
      const bool device_fault = code == StatusCode::kUnavailable ||
                                code == StatusCode::kCorrupted ||
                                code == StatusCode::kIOError;
      // Logic errors (all frames pinned, unknown page, policy bug)
      // still fail the query; only device-level losses degrade.
      if (!device_fault) return page.status();
      // Degrade: forfeit the page like a threshold-skipped tail. Each
      // of its postings could have contributed at most
      // page_max_weight * w_{q,t} to one document, and the page's max
      // weight is catalog metadata, readable without a device read.
      const double bound =
          index_->disk().PageMaxWeight(PageId{qt.term, page_no}) * wq;
      ++trace.pages_lost;
      result->quality_bound += bound;
      if (tracer != nullptr) tracer->PageLost(qt.term, page_no, bound);
      continue;
    }
    ++trace.pages_processed;
    if (page.value().was_miss()) ++trace.pages_read;
    const double page_smax_before = *smax;

    // The "easy fix" flag forces the entire first page to contribute, so a
    // term added during refinement can never be silently ignored.
    const bool unconditional =
        options_.always_read_first_page && page_no == 0;

    // Threshold decisions are per-run, not per-posting: every posting in
    // a run shares f_{d,t}, so its branch — and its contribution
    // w_{d,t} * w_{q,t} — is computed once per run and the per-doc loops
    // below touch only the SoA doc_ids[].
    const storage::PostingBlock& block = page.value()->block;
    // One kAccumulate span per fetched page (the span sits outside the
    // run scans, so the hot loops themselves stay untouched).
    obs::ScopedSpan accumulate_span(options_.span_recorder,
                                    obs::SpanStage::kAccumulate, qt.term);
    for (const storage::PostingRun& run : block.runs) {
      const double f = static_cast<double>(run.freq);
      if (unconditional || f > th.f_ins) {
        // Steps 4(c)i-ii: candidate insertion.
        const double partial = DocTermWeight(run.freq, info.idf) * wq;
        // LINT-HOT-LOOP: DF/BAF insert-mode run scan.
        for (uint32_t i = run.begin; i < run.end; ++i) {
          ++trace.postings_processed;
          double& a = accumulators->FindOrInsert(block.doc_ids[i]);
          a += partial;
          if (a > *smax) *smax = a;
        }
        // LINT-HOT-LOOP-END
      } else if (f > th.f_add) {
        if (tracer != nullptr && phase[0] == 'i') {
          tracer->Phase(qt.term, "ins->add");
          phase = "add";
        }
        // Step 4(c)iii: contribute only to existing candidates.
        const double partial = DocTermWeight(run.freq, info.idf) * wq;
        // LINT-HOT-LOOP: DF/BAF add-mode run scan.
        for (uint32_t i = run.begin; i < run.end; ++i) {
          ++trace.postings_processed;
          if (double* a = accumulators->FindOrNull(block.doc_ids[i])) {
            *a += partial;
            if (*a > *smax) *smax = *a;
          }
        }
        // LINT-HOT-LOOP-END
      } else if (can_stop_early) {
        // Step 4(c)iv: frequency-sorted order guarantees no later posting
        // can pass the addition threshold. The posting that triggers the
        // stop is counted as processed, exactly as the per-posting loop
        // counted it.
        ++trace.postings_processed;
        if (tracer != nullptr) {
          tracer->Phase(qt.term,
                        phase[0] == 'i' ? "ins->drop" : "add->drop");
        }
        stop = true;
        break;
      } else {
        // Document-ordered list below f_add: every posting is examined
        // (and counted) but none can contribute.
        trace.postings_processed += run.end - run.begin;
      }
    }
    if (unconditional && below_add) stop = true;
    // One Smax event per page that moved it (posting granularity would
    // swamp the trace; page granularity preserves the trajectory).
    if (tracer != nullptr && *smax != page_smax_before) {
      tracer->Smax(qt.term, page_smax_before, *smax);
    }
  }

  // Pages the budget kept us from reading: each could have contributed
  // at most page_max_weight * w_{q,t} per posting-touched document —
  // the same replacement-value bound a lost page gets. An early f_add
  // stop makes the tail worthless anyway, so no bound accrues then.
  if (!stop && page_cap < info.pages) {
    for (uint32_t page_no = page_cap; page_no < info.pages; ++page_no) {
      result->quality_bound +=
          index_->disk().PageMaxWeight(PageId{qt.term, page_no}) * wq;
    }
    trace.pages_trimmed = info.pages - page_cap;
    result->pages_trimmed += trace.pages_trimmed;
    result->work_trimmed = true;
  }

  trace.smax_after = *smax;
  result->pages_processed += trace.pages_processed;
  result->disk_reads += trace.pages_read;
  result->postings_processed += trace.postings_processed;
  result->pages_lost += trace.pages_lost;
  if (options_.record_trace) result->trace.push_back(trace);
  if (tracer != nullptr) {
    tracer->EndTerm(qt.term, *smax, trace.postings_processed);
    tracer->Accumulators(accumulators->size());
  }
  return Status::OK();
}

void FilteringEvaluator::ForfeitTerm(const QueryTerm& qt,
                                     EvalResult* result) const {
  // A whole term cut off by the deadline: any one document could have
  // gained at most w(fmax, idf) * w_{q,t} from it.
  const index::TermInfo& info = index_->lexicon().info(qt.term);
  result->quality_bound +=
      DocTermWeight(info.fmax, info.idf) * QueryTermWeight(qt.fq, info.idf);
}

void FilteringEvaluator::TermwiseRun::Begin(const Query& query,
                                            const EvalControl* control) {
  if (control != nullptr) {
    control_ = *control;
    has_control_ = true;
  }
  obs::ScopedSpan snapshot_span(evaluator_->options_.span_recorder,
                                obs::SpanStage::kContextSnapshot);
  buffers_->SetQueryContext(
      BuildQueryContext(query, evaluator_->index_->lexicon()));
}

Result<FilteringEvaluator::TermwiseRun::StepOutcome>
FilteringEvaluator::TermwiseRun::Step(const QueryTerm& qt, double smax_in) {
  const uint32_t skipped_before = result_.terms_skipped;
  const uint64_t reads_before = result_.disk_reads;
  const uint32_t lost_before = result_.pages_lost;
  double smax = smax_in;
  IRBUF_RETURN_NOT_OK(
      evaluator_->ProcessTerm(qt, buffers_, &accumulators_, &smax, &result_,
                              has_control_ ? &control_ : nullptr));
  StepOutcome outcome;
  outcome.smax = smax;
  outcome.skipped = result_.terms_skipped != skipped_before;
  outcome.pages_read =
      static_cast<uint32_t>(result_.disk_reads - reads_before);
  outcome.pages_lost = result_.pages_lost - lost_before;
  return outcome;
}

void FilteringEvaluator::TermwiseRun::Forfeit(const QueryTerm& qt) {
  evaluator_->ForfeitTerm(qt, &result_);
}

EvalResult FilteringEvaluator::TermwiseRun::Finish() {
  {
    obs::ScopedSpan merge_span(evaluator_->options_.span_recorder,
                               obs::SpanStage::kTopKMerge);
    result_.top_docs = SelectTopN(accumulators_, *evaluator_->index_,
                                  evaluator_->options_.top_n);
  }
  result_.accumulators = accumulators_.size();
  result_.degraded = result_.pages_lost > 0 || result_.deadline_hit ||
                     result_.work_trimmed || result_.shards_lost > 0;
  return std::move(result_);
}

Result<EvalResult> FilteringEvaluator::Evaluate(
    const Query& query, buffer::BufferPool* buffers,
    const EvalControl* control) const {
  EvalResult result;
  if (query.empty()) return result;

  // Deadline probe, read at term boundaries only (a handful of clock
  // reads per query; a hit deadline never tears a term mid-list).
  const auto deadline_passed = [control]() {
    if (control == nullptr || control->deadline_us == 0) return false;
    uint64_t (*clock)() = control->now_us != nullptr
                              ? control->now_us
                              : &fault::MonotonicNowUs;
    return clock() >= control->deadline_us;
  };

  // Ranking-aware replacement sees the new query's weights before any page
  // of this evaluation is touched.
  {
    obs::ScopedSpan snapshot_span(options_.span_recorder,
                                  obs::SpanStage::kContextSnapshot);
    buffers->SetQueryContext(BuildQueryContext(query, index_->lexicon()));
  }

  obs::QueryTracer* const tracer = options_.tracer;
  if (tracer != nullptr) tracer->BeginQuery(query.size());

  AccumulatorSet accumulators;
  double smax = 0.0;

  if (!options_.buffer_aware) {
    // --- DF: fixed decreasing-idf order. ---
    const std::vector<QueryTerm> order =
        DfTermOrder(query, index_->lexicon());
    for (size_t i = 0; i < order.size(); ++i) {
      // Brownout rung 1: the term budget cuts the low-idf tail (DF
      // order puts the highest-impact terms first).
      if (control != nullptr && control->max_terms > 0 &&
          i >= control->max_terms) {
        result.work_trimmed = true;
        for (size_t j = i; j < order.size(); ++j) {
          ForfeitTerm(order[j], &result);
        }
        break;
      }
      if (deadline_passed()) {
        result.deadline_hit = true;
        for (size_t j = i; j < order.size(); ++j) {
          ForfeitTerm(order[j], &result);
        }
        break;
      }
      IRBUF_RETURN_NOT_OK(ProcessTerm(order[i], buffers, &accumulators,
                                      &smax, &result, control));
    }
  } else {
    // --- BAF: per round, pick the unmarked term with the fewest estimated
    // disk reads (step 3a of Figure 2). ---
    struct Candidate {
      QueryTerm qt;
      double cached_smax = -1.0;  // Smax at which fadd/pt were computed.
      double f_add = 0.0;
      uint32_t pt = 0;
      bool done = false;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(query.size());
    for (const QueryTerm& qt : query.terms()) {
      candidates.push_back(Candidate{qt, -1.0, 0.0, 0, false});
    }

    const index::Lexicon& lexicon = index_->lexicon();
    const index::ConversionTable& table = index_->conversion_table();

    for (size_t round = 0; round < candidates.size(); ++round) {
      // Brownout rung 1 for BAF: the budget caps rounds; the unmarked
      // remainder is forfeited. BAF picks cheap-read terms first, so
      // the cut falls on the most expensive lists.
      if (control != nullptr && control->max_terms > 0 &&
          round >= control->max_terms) {
        result.work_trimmed = true;
        for (const Candidate& cand : candidates) {
          if (!cand.done) ForfeitTerm(cand.qt, &result);
        }
        break;
      }
      if (deadline_passed()) {
        result.deadline_hit = true;
        for (const Candidate& cand : candidates) {
          if (!cand.done) ForfeitTerm(cand.qt, &result);
        }
        break;
      }
      Candidate* best = nullptr;
      uint32_t best_dt = 0;
      double best_idf = 0.0;
      for (Candidate& cand : candidates) {
        if (cand.done) continue;
        const index::TermInfo& info = lexicon.info(cand.qt.term);
        // f_add and p_t change only when Smax has changed since they were
        // last computed (the caching optimization of Section 3.2.2).
        if (cand.cached_smax != smax) {
          cand.f_add = ComputeThresholds(options_.c_ins, options_.c_add,
                                         smax, cand.qt.fq, info.idf)
                           .f_add;
          cand.pt = table.PagesToProcess(cand.qt.term, cand.f_add,
                                         info.pages, info.fmax);
          cand.cached_smax = smax;
        }
        // b_t from the buffer manager's residency counters (step 3a.iii).
        const uint32_t bt = buffers->ResidentPages(cand.qt.term);
        const uint32_t dt = cand.pt > bt ? cand.pt - bt : 0;
        if (best == nullptr || dt < best_dt ||
            (dt == best_dt && (info.idf > best_idf ||
                               (info.idf == best_idf &&
                                cand.qt.term < best->qt.term)))) {
          best = &cand;
          best_dt = dt;
          best_idf = info.idf;
        }
      }
      best->done = true;
      IRBUF_RETURN_NOT_OK(ProcessTerm(best->qt, buffers, &accumulators,
                                      &smax, &result, control));
    }
  }

  // Steps 5-6: normalize by W_d and keep the n best.
  {
    obs::ScopedSpan merge_span(options_.span_recorder,
                               obs::SpanStage::kTopKMerge);
    result.top_docs = SelectTopN(accumulators, *index_, options_.top_n);
  }
  result.accumulators = accumulators.size();
  result.degraded = result.pages_lost > 0 || result.deadline_hit ||
                    result.work_trimmed || result.shards_lost > 0;
  if (tracer != nullptr) tracer->EndQuery(smax, result.accumulators);
  return result;
}

}  // namespace irbuf::core
