#include "core/quit_continue_evaluator.h"

#include <algorithm>

#include "core/accumulator_set.h"
#include "core/scorer.h"
#include "core/top_n.h"

namespace irbuf::core {

Result<EvalResult> QuitContinueEvaluator::Evaluate(
    const Query& query, buffer::BufferPool* buffers) const {
  EvalResult result;
  if (query.empty()) return result;

  buffers->SetQueryContext(BuildQueryContext(query, index_->lexicon()));

  // Decreasing-idf order, as in DF's step 3.
  std::vector<QueryTerm> order = query.terms();
  const index::Lexicon& lexicon = index_->lexicon();
  std::sort(order.begin(), order.end(),
            [&lexicon](const QueryTerm& a, const QueryTerm& b) {
              const index::TermInfo& ia = lexicon.info(a.term);
              const index::TermInfo& ib = lexicon.info(b.term);
              if (ia.idf != ib.idf) return ia.idf > ib.idf;
              return a.term < b.term;
            });

  AccumulatorSet accumulators;
  bool quit = false;

  obs::QueryTracer* const tracer = options_.tracer;
  if (tracer != nullptr) tracer->BeginQuery(order.size());
  // The accumulator budget starts in the "grow" phase; the transition to
  // "capped" (continue) or "quit" is recorded once, when first hit.
  bool limit_hit = false;

  for (const QueryTerm& qt : order) {
    if (quit) break;
    const index::TermInfo& info = lexicon.info(qt.term);
    const double wq = QueryTermWeight(qt.fq, info.idf);
    const uint64_t postings_before = result.postings_processed;
    if (tracer != nullptr) tracer->BeginTerm(qt.term, info.pages, 0.0, 0.0);
    // Quit/continue reads every page of the list in order (no threshold
    // clipping exists in this strategy), so the whole tail is the plan.
    if (buffers->PrefetchDepth() > 0 && info.pages > 1) {
      std::vector<PageId> plan;
      plan.reserve(info.pages - 1);
      for (uint32_t page_no = 1; page_no < info.pages; ++page_no) {
        plan.push_back(PageId{qt.term, page_no});
      }
      buffers->Prefetch(buffer::PageAccessPlan(plan.data(), plan.size()));
    }
    for (uint32_t page_no = 0; page_no < info.pages && !quit; ++page_no) {
      Result<buffer::PinnedPage> page =
          buffers->FetchPinned(PageId{qt.term, page_no});
      if (!page.ok()) return page.status();
      ++result.pages_processed;
      if (page.value().was_miss()) ++result.disk_reads;
      const storage::PostingBlock& block = page.value()->block;
      for (const storage::PostingRun& run : block.runs) {
        if (quit) break;
        // Hoisted per run: all postings in a run share f_{d,t}.
        const double partial = DocTermWeight(run.freq, info.idf) * wq;
        // LINT-HOT-LOOP: quit/continue run scan.
        for (uint32_t i = run.begin; i < run.end; ++i) {
          ++result.postings_processed;
          const DocId doc = block.doc_ids[i];
          double* a = accumulators.FindOrNull(doc);
          if (a == nullptr) {
            if (accumulators.size() >= options_.accumulator_limit) {
              if (tracer != nullptr && !limit_hit) {
                limit_hit = true;
                // The limit_hit latch makes this trace event fire at
                // most once per query, so the tracer's push_back is off
                // the steady-state posting path.
                // irbuf-analyzer: allow(hot-alloc-ast)
                tracer->Phase(qt.term, options_.mode == LimitMode::kQuit
                                           ? "grow->quit"
                                           : "grow->capped");
              }
              if (options_.mode == LimitMode::kQuit) {
                quit = true;
                break;
              }
              continue;  // kContinue: no new candidates, keep updating.
            }
            a = &accumulators.Insert(doc, 0.0);
          }
          *a += partial;
        }
        // LINT-HOT-LOOP-END
      }
    }
    if (tracer != nullptr) {
      tracer->EndTerm(qt.term, 0.0,
                      result.postings_processed - postings_before);
      tracer->Accumulators(accumulators.size());
    }
  }

  result.top_docs = SelectTopN(accumulators, *index_, options_.top_n);
  result.accumulators = accumulators.size();
  if (tracer != nullptr) tracer->EndQuery(0.0, result.accumulators);
  return result;
}

}  // namespace irbuf::core
