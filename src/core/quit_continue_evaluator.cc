#include "core/quit_continue_evaluator.h"

#include <algorithm>

#include "core/accumulator_set.h"
#include "core/scorer.h"
#include "core/top_n.h"

namespace irbuf::core {

Result<EvalResult> QuitContinueEvaluator::Evaluate(
    const Query& query, buffer::BufferManager* buffers) const {
  EvalResult result;
  if (query.empty()) return result;

  buffers->SetQueryContext(BuildQueryContext(query, index_->lexicon()));

  // Decreasing-idf order, as in DF's step 3.
  std::vector<QueryTerm> order = query.terms();
  const index::Lexicon& lexicon = index_->lexicon();
  std::sort(order.begin(), order.end(),
            [&lexicon](const QueryTerm& a, const QueryTerm& b) {
              const index::TermInfo& ia = lexicon.info(a.term);
              const index::TermInfo& ib = lexicon.info(b.term);
              if (ia.idf != ib.idf) return ia.idf > ib.idf;
              return a.term < b.term;
            });

  AccumulatorSet accumulators;
  const uint64_t misses_before = buffers->stats().misses;
  const uint64_t fetches_before = buffers->stats().fetches;
  bool quit = false;

  for (const QueryTerm& qt : order) {
    if (quit) break;
    const index::TermInfo& info = lexicon.info(qt.term);
    const double wq = QueryTermWeight(qt.fq, info.idf);
    for (uint32_t page_no = 0; page_no < info.pages && !quit; ++page_no) {
      Result<const storage::Page*> page =
          buffers->FetchPage(PageId{qt.term, page_no});
      if (!page.ok()) return page.status();
      for (const Posting& p : page.value()->postings) {
        ++result.postings_processed;
        double* a = accumulators.Find(p.doc);
        if (a == nullptr) {
          if (accumulators.size() >= options_.accumulator_limit) {
            if (options_.mode == LimitMode::kQuit) {
              quit = true;
              break;
            }
            continue;  // kContinue: no new candidates, keep updating.
          }
          a = &accumulators.Insert(p.doc, 0.0);
        }
        *a += DocTermWeight(p.freq, info.idf) * wq;
      }
    }
  }

  result.disk_reads = buffers->stats().misses - misses_before;
  result.pages_processed = buffers->stats().fetches - fetches_before;
  result.top_docs = SelectTopN(accumulators, *index_, options_.top_n);
  result.accumulators = accumulators.size();
  return result;
}

}  // namespace irbuf::core
