// The candidate set A of the filtering algorithms: partial scores for
// documents that may end up among the n highest-ranked answers. Its size
// is the paper's memory metric — unfiltered evaluation frequently keeps
// accumulators for more than half the collection (Section 2.4).

#ifndef IRBUF_CORE_ACCUMULATOR_SET_H_
#define IRBUF_CORE_ACCUMULATOR_SET_H_

#include <cstdint>
#include <unordered_map>

#include "storage/types.h"

namespace irbuf::core {

class AccumulatorSet {
 public:
  AccumulatorSet() = default;

  /// Pointer to d's accumulator, or nullptr when d is not a candidate.
  double* Find(DocId d) {
    auto it = map_.find(d);
    return it == map_.end() ? nullptr : &it->second;
  }
  const double* Find(DocId d) const {
    auto it = map_.find(d);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Inserts a new accumulator (d must not be present) and returns a
  /// reference to it.
  double& Insert(DocId d, double initial) {
    return map_.emplace(d, initial).first->second;
  }

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.clear(); }

  /// Iteration over (doc, accumulated score).
  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

 private:
  std::unordered_map<DocId, double> map_;
};

}  // namespace irbuf::core

#endif  // IRBUF_CORE_ACCUMULATOR_SET_H_
