// The candidate set A of the filtering algorithms: partial scores for
// documents that may end up among the n highest-ranked answers. Its size
// is the paper's memory metric — unfiltered evaluation frequently keeps
// accumulators for more than half the collection (Section 2.4).
//
// Implemented as a flat open-addressing table (power-of-two capacity,
// linear probing): one probe touches one cache line holding the key,
// where std::unordered_map chases a bucket pointer per lookup. The
// paper's algorithms never erase an accumulator mid-query, so the table
// is tombstone-free and probe chains never degrade. DocId 0xFFFFFFFF is
// reserved as the empty-slot sentinel (collections are bounded far
// below 2^32 documents).

#ifndef IRBUF_CORE_ACCUMULATOR_SET_H_
#define IRBUF_CORE_ACCUMULATOR_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "storage/types.h"
#include "util/dcheck.h"

namespace irbuf::core {

class AccumulatorSet {
 public:
  AccumulatorSet() = default;

  /// Pointer to d's accumulator, or nullptr when d is not a candidate.
  /// Never allocates: this is the probe the DF "add" mode and the
  /// quit/continue budget check issue once per posting.
  double* FindOrNull(DocId d) {
    // The sentinel id would alias empty slots (the k == d test below
    // matches kEmpty first, handing back an unoccupied slot's value).
    if (d == kEmpty || mask_ == 0) return nullptr;
    size_t i = Hash(d) & mask_;
    while (true) {
      const DocId k = keys_[i];
      if (k == d) return &vals_[i];
      if (k == kEmpty) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  const double* FindOrNull(DocId d) const {
    return const_cast<AccumulatorSet*>(this)->FindOrNull(d);
  }

  /// d's accumulator, inserted as 0.0 when absent (the DF "ins" mode:
  /// one probe sequence serves both the lookup and the insertion).
  double& FindOrInsert(DocId d) {
    bool inserted;
    return FindOrInsertImpl(d, &inserted);
  }

  /// Compatibility aliases for the pre-rewrite API.
  double* Find(DocId d) { return FindOrNull(d); }
  const double* Find(DocId d) const { return FindOrNull(d); }

  /// Inserts a new accumulator and returns a reference to it. Like
  /// unordered_map::emplace, an already-present d keeps its current
  /// value (`initial` is only stored on true insertion).
  double& Insert(DocId d, double initial) {
    bool inserted;
    double& v = FindOrInsertImpl(d, &inserted);
    if (inserted) v = initial;
    return v;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Empties the set, keeping the table allocation.
  void Clear() {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    size_ = 0;
  }

  /// Iteration over (doc, accumulated score) in unspecified order, as
  /// with the map this replaced (SelectTopN's result is independent of
  /// visit order: WorseFirst is a total order on (score, doc)).
  class const_iterator {
   public:
    using value_type = std::pair<DocId, double>;

    value_type operator*() const {
      return {set_->keys_[i_], set_->vals_[i_]};
    }
    const_iterator& operator++() {
      ++i_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    friend class AccumulatorSet;
    const_iterator(const AccumulatorSet* set, size_t i)
        : set_(set), i_(i) {
      SkipEmpty();
    }
    void SkipEmpty() {
      while (i_ < set_->keys_.size() && set_->keys_[i_] == kEmpty) ++i_;
    }

    const AccumulatorSet* set_;
    size_t i_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, keys_.size()); }

 private:
  static constexpr DocId kEmpty = 0xFFFFFFFFu;
  static constexpr size_t kInitialCapacity = 16;

  /// Fibonacci hashing: the golden-ratio multiplier spreads consecutive
  /// and strided doc ids across the table; the top product bits feed the
  /// mask (low multiply bits alone alias on stride-2^k patterns).
  static size_t Hash(DocId d) {
    return static_cast<size_t>(
        (static_cast<uint64_t>(d) * 0x9E3779B97F4A7C15ull) >> 32);
  }

  double& FindOrInsertImpl(DocId d, bool* inserted) {
    IRBUF_DCHECK(d != kEmpty, "DocId 0xFFFFFFFF is reserved");
    // Grow at 1/2 load. The DF add mode probes for documents that are
    // mostly NOT candidates, and linear-probing miss chains blow up
    // quadratically with load (~32 probes at 7/8 load vs ~2.5 at 1/2),
    // so the table trades memory — still well under the map's per-node
    // overhead — for guaranteed-short misses.
    if ((size_ + 1) * 2 > mask_ + 1) Grow();
    // LINT-HOT-LOOP: accumulator probe chain.
    size_t i = Hash(d) & mask_;
    while (true) {
      const DocId k = keys_[i];
      if (k == d) {
        *inserted = false;
        return vals_[i];
      }
      if (k == kEmpty) {
        keys_[i] = d;
        vals_[i] = 0.0;
        ++size_;
        *inserted = true;
        return vals_[i];
      }
      i = (i + 1) & mask_;
    }
    // LINT-HOT-LOOP-END
  }

  // Doubling growth: each element is moved O(1) times amortized, so the
  // per-posting cost inside the evaluator hot loops stays constant.
  // irbuf-analyzer: amortized-alloc
  void Grow() {
    const size_t new_cap = mask_ == 0 ? kInitialCapacity : (mask_ + 1) * 2;
    std::vector<DocId> old_keys = std::move(keys_);
    std::vector<double> old_vals = std::move(vals_);
    keys_.assign(new_cap, kEmpty);
    vals_.assign(new_cap, 0.0);
    mask_ = new_cap - 1;
    for (size_t j = 0; j < old_keys.size(); ++j) {
      if (old_keys[j] == kEmpty) continue;
      size_t i = Hash(old_keys[j]) & mask_;
      while (keys_[i] != kEmpty) i = (i + 1) & mask_;
      keys_[i] = old_keys[j];
      vals_[i] = old_vals[j];
    }
  }

  std::vector<DocId> keys_;
  std::vector<double> vals_;
  size_t size_ = 0;
  size_t mask_ = 0;  // capacity - 1; 0 while the table is unallocated.
};

}  // namespace irbuf::core

#endif  // IRBUF_CORE_ACCUMULATOR_SET_H_
