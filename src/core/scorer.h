// The cosine-similarity weighting scheme of Section 2.2 (Equations 1-5):
// term weights, partial similarities, and the filtering thresholds of
// Persin's Document Filtering algorithm.

#ifndef IRBUF_CORE_SCORER_H_
#define IRBUF_CORE_SCORER_H_

#include "buffer/query_context.h"
#include "core/query.h"
#include "index/inverted_index.h"

namespace irbuf::core {

/// w_{d,t} = f_{d,t} * idf_t (Equation 3).
inline double DocTermWeight(uint32_t freq, double idf) {
  return static_cast<double>(freq) * idf;
}

/// w_{q,t} = f_{q,t} * idf_t (the analogous query-side formula).
inline double QueryTermWeight(uint32_t fq, double idf) {
  return static_cast<double>(fq) * idf;
}

/// Partial similarity of document d due to term t: w_{d,t} * w_{q,t}.
inline double PartialSimilarity(uint32_t freq, uint32_t fq, double idf) {
  return DocTermWeight(freq, idf) * QueryTermWeight(fq, idf);
}

/// The DF filtering thresholds (Equation 5):
///   f_ins = c_ins * Smax / (f_{q,t} * idf_t^2)
///   f_add = c_add * Smax / (f_{q,t} * idf_t^2)
/// A posting contributes a new accumulator only when f_{d,t} > f_ins, and
/// contributes to an existing accumulator only when f_{d,t} > f_add.
struct Thresholds {
  double f_ins = 0.0;
  double f_add = 0.0;
};

inline Thresholds ComputeThresholds(double c_ins, double c_add, double smax,
                                    uint32_t fq, double idf) {
  const double denom = static_cast<double>(fq) * idf * idf;
  if (denom <= 0.0) return Thresholds{0.0, 0.0};
  return Thresholds{c_ins * smax / denom, c_add * smax / denom};
}

/// Builds the buffer-manager query context (term -> w_{q,t}) RAP consumes.
buffer::QueryContext BuildQueryContext(const Query& query,
                                       const index::Lexicon& lexicon);

}  // namespace irbuf::core

#endif  // IRBUF_CORE_SCORER_H_
