// Boolean query evaluation (Section 2.1): the early-commercial-IR model
// the paper contrasts with natural-language ranking. Unlike the filtering
// evaluators, boolean evaluation is *safe* — every posting of every query
// term must be read — which is exactly why buffer-aware reordering cannot
// skip data here (it can still reorder reads to favour resident pages).

#ifndef IRBUF_CORE_BOOLEAN_EVALUATOR_H_
#define IRBUF_CORE_BOOLEAN_EVALUATOR_H_

#include <vector>

#include "buffer/buffer_pool.h"
#include "core/query.h"
#include "index/inverted_index.h"
#include "util/status.h"

namespace irbuf::core {

/// Connective of a flat boolean query.
enum class BooleanOp { kAnd, kOr };

/// Result of a boolean evaluation: the (unranked) matching documents plus
/// the I/O accounting shared with the filtering evaluators.
struct BooleanResult {
  std::vector<DocId> docs;  // Sorted ascending.
  uint64_t disk_reads = 0;
  uint64_t pages_processed = 0;
  uint64_t postings_processed = 0;
};

/// Evaluates t1 OP t2 OP ... over the inverted index.
class BooleanEvaluator {
 public:
  explicit BooleanEvaluator(const index::InvertedIndex* index)
      : index_(index) {}

  Result<BooleanResult> Evaluate(const Query& query, BooleanOp op,
                                 buffer::BufferPool* buffers) const;

 private:
  const index::InvertedIndex* index_;
};

}  // namespace irbuf::core

#endif  // IRBUF_CORE_BOOLEAN_EVALUATOR_H_
