#include "core/accumulator_set.h"

// Header-only; anchors the translation unit.
