// Natural-language (vector-space) queries: a bag of terms with query-side
// frequencies f_{q,t} (terms may repeat, e.g. due to relevance feedback —
// Section 2.2). Queries are mutable to support refinement: terms can be
// added and removed between submissions.

#ifndef IRBUF_CORE_QUERY_H_
#define IRBUF_CORE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/lexicon.h"
#include "storage/types.h"
#include "text/pipeline.h"
#include "util/status.h"

namespace irbuf::core {

/// One query term with its query frequency.
struct QueryTerm {
  TermId term = 0;
  uint32_t fq = 1;

  bool operator==(const QueryTerm&) const = default;
};

/// One ranked answer.
struct ScoredDoc {
  DocId doc = 0;
  /// Cosine relevance (Equation 1): accumulated partial similarities
  /// divided by the document vector length W_d.
  double score = 0.0;

  bool operator==(const ScoredDoc&) const = default;
};

/// A bag-of-terms query.
class Query {
 public:
  Query() = default;

  /// Adds `fq` occurrences of `term` (accumulates if already present).
  void AddTerm(TermId term, uint32_t fq = 1);

  /// Removes `term` entirely. Returns true if it was present.
  bool RemoveTerm(TermId term);

  bool Contains(TermId term) const;

  /// f_{q,t}, or 0 when the term is absent.
  uint32_t FrequencyOf(TermId term) const;

  /// Unique terms, in insertion order.
  const std::vector<QueryTerm>& terms() const { return terms_; }
  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  /// Analyzes free text with `pipeline` and resolves terms against
  /// `lexicon`. Terms not in the collection are skipped (they cannot match
  /// any document); their count is reported via `*oov_terms` if non-null.
  static Query Parse(const std::string& text,
                     const text::AnalysisPipeline& pipeline,
                     const index::Lexicon& lexicon,
                     size_t* oov_terms = nullptr);

 private:
  std::vector<QueryTerm> terms_;
};

}  // namespace irbuf::core

#endif  // IRBUF_CORE_QUERY_H_
