#include "core/query.h"

#include <algorithm>

namespace irbuf::core {

void Query::AddTerm(TermId term, uint32_t fq) {
  if (fq == 0) return;
  for (QueryTerm& qt : terms_) {
    if (qt.term == term) {
      qt.fq += fq;
      return;
    }
  }
  terms_.push_back(QueryTerm{term, fq});
}

bool Query::RemoveTerm(TermId term) {
  auto it = std::find_if(terms_.begin(), terms_.end(),
                         [term](const QueryTerm& qt) {
                           return qt.term == term;
                         });
  if (it == terms_.end()) return false;
  terms_.erase(it);
  return true;
}

bool Query::Contains(TermId term) const { return FrequencyOf(term) > 0; }

uint32_t Query::FrequencyOf(TermId term) const {
  for (const QueryTerm& qt : terms_) {
    if (qt.term == term) return qt.fq;
  }
  return 0;
}

Query Query::Parse(const std::string& text,
                   const text::AnalysisPipeline& pipeline,
                   const index::Lexicon& lexicon, size_t* oov_terms) {
  Query q;
  size_t oov = 0;
  for (const auto& [stem, freq] : pipeline.TermFrequencies(text)) {
    Result<TermId> id = lexicon.Find(stem);
    if (!id.ok()) {
      ++oov;
      continue;
    }
    q.AddTerm(id.value(), freq);
  }
  if (oov_terms != nullptr) *oov_terms = oov;
  return q;
}

}  // namespace irbuf::core
