// The filtering query evaluators:
//
//  * DF  — Persin's Document Filtering algorithm (Figure 1): terms are
//    processed in decreasing-idf order; within each list, postings are
//    filtered against the insertion threshold f_ins and the addition
//    threshold f_add (Equation 5), and processing of the list stops at the
//    first posting at or below f_add (lists are frequency-sorted, so no
//    later posting can pass).
//
//  * BAF — Buffer-Aware Filtering (Figure 2), the paper's contribution:
//    identical filtering, but in each round the next term is the unmarked
//    term with the fewest *estimated disk reads* d_t = max(p_t - b_t, 0),
//    where p_t comes from the conversion table and b_t from the buffer
//    manager's residency counters; ties go to the higher idf.
//
// Setting c_ins = c_add = 0 disables the unsafe optimization and yields
// the safe, full-evaluation baseline the paper measures savings against.

#ifndef IRBUF_CORE_FILTERING_EVALUATOR_H_
#define IRBUF_CORE_FILTERING_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "buffer/buffer_pool.h"
#include "core/accumulator_set.h"
#include "core/query.h"
#include "index/inverted_index.h"
#include "obs/query_tracer.h"
#include "obs/span.h"
#include "util/status.h"

namespace irbuf::core {

/// Tuning of the filtering evaluators.
struct EvalOptions {
  /// Insertion-threshold constant (controls candidate-set size). The
  /// paper's experiments use Persin's tuned value 0.07 (Section 4.1).
  double c_ins = 0.07;
  /// Addition-threshold constant (controls disk reads); tuned value 0.002.
  double c_add = 0.002;
  /// Number of ranked answers to return.
  uint32_t top_n = 20;
  /// false = DF (static idf order); true = BAF (buffer-aware order).
  bool buffer_aware = false;
  /// The "easy fix" of Section 3.2.2: always process at least the first
  /// page of every term, so a refined query can never return the previous
  /// answer unchanged. Off by default, as in the paper's experiments.
  bool always_read_first_page = false;
  /// Record the per-term trace (Tables 1-2, Figure 4). Cheap; on by
  /// default.
  bool record_trace = true;
  /// Optional structured event tracer (obs layer): term begin/end,
  /// ins->add->drop phase transitions, page-granular Smax updates and
  /// accumulator growth. Not owned; must outlive the evaluator. Tracing
  /// never changes results or counters — untraced runs (nullptr) pay a
  /// predictable branch per event site and nothing else. Note this only
  /// covers evaluator-side events; install the same tracer on the
  /// BufferManager (SetTracer) for fetch/eviction events.
  obs::QueryTracer* tracer = nullptr;
  /// Optional latency-attribution recorder (obs/span.h): times the
  /// context snapshot, each term's list traversal, every page pin, the
  /// per-page accumulator pass and the final top-k merge, nested so the
  /// serve path's p99 decomposition can tell pin wait from decode from
  /// scoring. Same contract as `tracer`: not owned, must outlive the
  /// evaluator, nullptr (the default) costs one branch per site and
  /// changes nothing else.
  obs::SpanRecorder* span_recorder = nullptr;
};

/// Evaluation-time controls independent of evaluator tuning: the
/// per-query deadline and work budgets a QueryServer imposes. The
/// deadline is checked at term boundaries (the evaluators' natural
/// phase boundaries), so a hit deadline yields a well-formed partial
/// ranking, never a torn term. The budgets are the serve layer's
/// brownout rungs: under overload the server first caps terms, then
/// pages per term, trading bounded answer quality for latency — every
/// trimmed posting is accounted in EvalResult::quality_bound exactly
/// like a deadline-forfeited one, so a browned-out answer is still
/// honest about what it may have missed.
struct EvalControl {
  /// Absolute deadline in microseconds on the `now_us` clock; 0 = none.
  uint64_t deadline_us = 0;
  /// Clock read once per term boundary; null = process steady clock
  /// (fault::MonotonicNowUs). Injectable for deterministic tests.
  uint64_t (*now_us)() = nullptr;
  /// Brownout rung 1: evaluate at most this many terms (in processing
  /// order), forfeiting the tail into quality_bound; 0 = all terms.
  /// Low-idf tail terms move scores least, so they are the cheapest
  /// quality to spend under overload.
  uint32_t max_terms = 0;
  /// Brownout rung 2: touch at most this many pages of any one term's
  /// list, forfeiting the rest (per-page PageMaxWeight bound) into
  /// quality_bound; 0 = no cap. Frequency-sorted lists put the
  /// highest-impact postings on the earliest pages, so the trimmed
  /// tail is again the cheapest work to shed.
  uint32_t max_pages_per_term = 0;
};

/// Per-term execution record, one row of the paper's Tables 1 and 2.
struct TermTrace {
  TermId term = 0;
  double idf = 0.0;
  uint32_t total_pages = 0;
  /// Smax before this term's thresholds were computed.
  double smax_before = 0.0;
  /// Smax after the term was processed.
  double smax_after = 0.0;
  double f_ins = 0.0;
  double f_add = 0.0;
  /// Pages of this list touched (buffer hits + misses).
  uint32_t pages_processed = 0;
  /// Pages of this list read from disk (buffer misses).
  uint32_t pages_read = 0;
  uint64_t postings_processed = 0;
  /// True when step 4b/3c skipped the whole list (fmax <= f_add).
  bool skipped = false;
  /// Pages of this list that were unreadable (device faults) and were
  /// degraded past instead of failing the query.
  uint32_t pages_lost = 0;
  /// Pages of this list left unread by EvalControl::max_pages_per_term
  /// (readable, but the server chose not to under brownout).
  uint32_t pages_trimmed = 0;
};

/// Everything one evaluation produces.
struct EvalResult {
  std::vector<ScoredDoc> top_docs;
  /// Pages read from disk (buffer misses) — the paper's headline metric.
  uint64_t disk_reads = 0;
  /// Pages touched through the buffer manager (hits + misses).
  uint64_t pages_processed = 0;
  /// Inverted-list entries processed — the CPU-cost metric.
  uint64_t postings_processed = 0;
  /// Candidate-set size — the memory metric.
  uint64_t accumulators = 0;
  /// Terms skipped entirely by the fmax <= f_add test.
  uint32_t terms_skipped = 0;
  /// Per-term trace, in processing order (empty if !record_trace).
  std::vector<TermTrace> trace;

  // --- Graceful degradation (fault/deadline tolerance) ---
  //
  // An unreadable page is handled exactly like a threshold-skipped list
  // tail: its postings are forfeited and the query completes on what
  // was readable. The same accounting covers terms cut off by a
  // deadline. `quality_bound` is the bookkeeping that makes the partial
  // answer honest: no document's true score exceeds its reported score
  // by more than the bound, because a lost page's postings contribute
  // at most page_max_weight * w_{q,t} each (the same product RAP uses
  // as a replacement value) and a skipped term at most
  // w(fmax, idf) * w_{q,t}.

  /// True when anything was forfeited (pages lost, deadline hit, work
  /// trimmed, or a shard dropped).
  bool degraded = false;
  /// Pages that could not be read after retries.
  uint32_t pages_lost = 0;
  /// Maximum score any single document could have gained from the
  /// forfeited postings. 0 when !degraded; always finite.
  double quality_bound = 0.0;
  /// True when the EvalControl deadline cut evaluation short.
  bool deadline_hit = false;
  /// True when an overload budget (EvalControl::max_terms /
  /// max_pages_per_term) trimmed work. Distinct from deadline_hit: the
  /// server chose the trim before evaluation, not the clock during it.
  bool work_trimmed = false;
  /// Pages left unread by max_pages_per_term across all terms.
  uint32_t pages_trimmed = 0;
  /// Doc-partitioned serving only: shards whose partial result was
  /// forfeited mid-query (breaker open or straggler abandoned); their
  /// loss is accounted in pages_lost and quality_bound.
  uint32_t shards_lost = 0;
};

/// DF's static processing order (step 3 of Figure 1): decreasing idf_t,
/// i.e. shortest inverted lists first; ties broken by list length then
/// term id for determinism. Exposed so a sharded coordinator can drive
/// every shard through the exact order the unsharded evaluator uses —
/// the first ingredient of the sharded/unsharded ranking identity.
std::vector<QueryTerm> DfTermOrder(const Query& query,
                                   const index::Lexicon& lexicon);

/// Evaluates vector-space queries against a frequency-sorted inverted
/// index through a buffer manager.
class FilteringEvaluator {
 public:
  /// The index must outlive the evaluator.
  FilteringEvaluator(const index::InvertedIndex* index, EvalOptions options)
      : index_(index), options_(options) {}

  /// Externally-driven evaluation of ONE query, one term at a time: the
  /// stepped counterpart of Evaluate() for coordinators that own the
  /// term order themselves (the sharded scatter-gather engine). The
  /// caller supplies Smax at every term boundary, which is exactly the
  /// granularity at which Evaluate() consults it — ProcessTerm computes
  /// f_ins/f_add once per term from Smax-at-term-start and only ever
  /// *raises* Smax mid-term — so driving N disjoint-doc-range shards
  /// through the same term order with the globally-maxed Smax
  /// reproduces the unsharded threshold trajectory bit-for-bit.
  ///
  /// Not thread-safe; a run belongs to one query. Steps may come from
  /// different threads as long as they are externally serialized with
  /// happens-before edges (the sharded engine's per-term barrier).
  class TermwiseRun {
   public:
    /// Both pointers are borrowed and must outlive the run.
    TermwiseRun(const FilteringEvaluator* evaluator,
                buffer::BufferPool* buffers)
        : evaluator_(evaluator), buffers_(buffers) {}

    TermwiseRun(TermwiseRun&&) = default;
    TermwiseRun& operator=(TermwiseRun&&) = delete;

    /// Installs the query's replacement context on the pool (same call
    /// Evaluate() opens with; a no-op under an attached shared context)
    /// and remembers `control` (may be null) for Step's per-term page
    /// budget. The control is copied BY VALUE into the run: an
    /// abandoned-straggler Step may execute after the coordinator's
    /// Evaluate returned, so it must never dereference caller-stack
    /// state. Term-level controls (deadline, max_terms) stay with the
    /// coordinator, which owns the term order.
    void Begin(const Query& query, const EvalControl* control = nullptr);

    struct StepOutcome {
      /// Smax after the term: max(smax_in, best accumulator touched).
      double smax = 0.0;
      /// True when the fmax <= f_add test skipped the whole list.
      bool skipped = false;
      /// This step's device I/O: pages read from disk and pages
      /// forfeited to device faults. The health signal a sharded
      /// coordinator feeds its per-shard circuit breaker.
      uint32_t pages_read = 0;
      uint32_t pages_lost = 0;
    };

    /// Processes one term's inverted list with thresholds derived from
    /// `smax_in`. Device-level faults degrade into the run's result;
    /// logic errors propagate (and poison the run).
    Result<StepOutcome> Step(const QueryTerm& qt, double smax_in);

    /// Adds `qt`'s maximum possible single-document contribution to the
    /// quality bound (a term forfeited to the coordinator's deadline).
    void Forfeit(const QueryTerm& qt);

    /// Normalizes and selects this run's top n (steps 5-6) and returns
    /// the accumulated result. The run is spent afterwards.
    EvalResult Finish();

   private:
    const FilteringEvaluator* evaluator_;
    buffer::BufferPool* buffers_;
    /// Value copy of Begin's control (see Begin); has_control_ gates it
    /// so a null caller pointer stays "no control" for ProcessTerm.
    EvalControl control_;
    bool has_control_ = false;
    AccumulatorSet accumulators_;
    EvalResult result_;
  };

  /// Runs one query. The buffer pool's contents persist across calls —
  /// that persistence is exactly what refinement workloads exercise.
  /// Pages are accessed through the pin/unpin protocol (one page pinned
  /// at a time), so the same evaluator code runs unchanged against the
  /// single-threaded BufferManager and the concurrent serving pool.
  ///
  /// Device-level read failures (kUnavailable, kCorrupted, kIOError —
  /// retries already exhausted below the pool) degrade the result
  /// instead of failing it: see EvalResult's degradation fields.
  /// Logic errors (kResourceExhausted, kNotFound, ...) still propagate.
  /// `control` (optional) imposes a deadline; pass nullptr for none.
  Result<EvalResult> Evaluate(const Query& query,
                              buffer::BufferPool* buffers,
                              const EvalControl* control = nullptr) const;

  const EvalOptions& options() const { return options_; }

 private:
  /// Processes one term's inverted list (steps 4b-4c / 3b-3d), updating
  /// accumulators, Smax and the trace. `control` (may be null) supplies
  /// the per-term page budget.
  Status ProcessTerm(const QueryTerm& qt, buffer::BufferPool* buffers,
                     AccumulatorSet* accumulators, double* smax,
                     EvalResult* result, const EvalControl* control) const;

  /// Adds term `qt`'s maximum possible single-document contribution to
  /// the quality bound (deadline-skipped terms).
  void ForfeitTerm(const QueryTerm& qt, EvalResult* result) const;

  const index::InvertedIndex* index_;
  EvalOptions options_;
};

}  // namespace irbuf::core

#endif  // IRBUF_CORE_FILTERING_EVALUATOR_H_
