#include "core/scorer.h"

namespace irbuf::core {

buffer::QueryContext BuildQueryContext(const Query& query,
                                       const index::Lexicon& lexicon) {
  buffer::QueryContext context;
  for (const QueryTerm& qt : query.terms()) {
    context.SetWeight(qt.term,
                      QueryTermWeight(qt.fq, lexicon.info(qt.term).idf));
  }
  return context;
}

}  // namespace irbuf::core
