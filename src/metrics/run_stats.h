// Small descriptive-statistics helpers for the bench harness (the paper
// reports best-case / mean / median savings across its 100 sequences).

#ifndef IRBUF_METRICS_RUN_STATS_H_
#define IRBUF_METRICS_RUN_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace irbuf::metrics {

/// Five-number-ish summary of a sample, tail percentiles included (the
/// obs layer reports p90/p99 latencies-in-simulated-cost alongside the
/// paper's mean/median savings).
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  size_t count = 0;
};

/// Computes the summary; an empty sample yields all zeros.
Summary Summarize(std::vector<double> values);

/// The `p`-th percentile (p in [0, 100]) of `values` with linear
/// interpolation between closest ranks (the numpy/Excel convention, so
/// Percentile(v, 50) == median). Empty input yields 0; `p` is clamped
/// to [0, 100].
double Percentile(std::vector<double> values, double p);

/// Percentile of a weighted sample: `weights[i]` copies of `values[i]`,
/// interpolated on the expanded sample's rank scale, so
/// PercentileWeighted(v, {1,1,...}, p) == Percentile(v, p). The obs
/// layer uses this to turn fixed-bucket histogram snapshots into
/// p50/p90/p99 without materializing the expansion. The arrays must be
/// the same length; zero total weight yields 0.
double PercentileWeighted(const std::vector<double>& values,
                          const std::vector<uint64_t>& weights, double p);

/// Fraction of values strictly above `threshold`.
double FractionAbove(const std::vector<double>& values, double threshold);

}  // namespace irbuf::metrics

#endif  // IRBUF_METRICS_RUN_STATS_H_
