#include "metrics/effectiveness.h"

#include <algorithm>

namespace irbuf::metrics {

namespace {

bool IsRelevant(const std::vector<DocId>& relevant, DocId doc) {
  return std::binary_search(relevant.begin(), relevant.end(), doc);
}

}  // namespace

double PrecisionAtK(const std::vector<core::ScoredDoc>& ranked,
                    const std::vector<DocId>& relevant, size_t k) {
  if (k == 0) return 0.0;
  size_t limit = std::min(k, ranked.size());
  size_t hits = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (IsRelevant(relevant, ranked[i].doc)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double Recall(const std::vector<core::ScoredDoc>& ranked,
              const std::vector<DocId>& relevant) {
  if (relevant.empty()) return 0.0;
  size_t hits = 0;
  for (const core::ScoredDoc& sd : ranked) {
    if (IsRelevant(relevant, sd.doc)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double AveragePrecision(const std::vector<core::ScoredDoc>& ranked,
                        const std::vector<DocId>& relevant) {
  if (relevant.empty()) return 0.0;
  size_t hits = 0;
  double sum = 0.0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (IsRelevant(relevant, ranked[i].doc)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(relevant.size());
}

}  // namespace irbuf::metrics
