#include "metrics/run_stats.h"

#include <algorithm>

namespace irbuf::metrics {

Summary Summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  size_t mid = values.size() / 2;
  s.median = values.size() % 2 == 1
                 ? values[mid]
                 : 0.5 * (values[mid - 1] + values[mid]);
  return s;
}

double FractionAbove(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  size_t count = 0;
  for (double v : values) {
    if (v > threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace irbuf::metrics
