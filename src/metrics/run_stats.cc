#include "metrics/run_stats.h"

#include <algorithm>
#include <cmath>

namespace irbuf::metrics {

namespace {

/// Percentile of an already-sorted sample, linear interpolation between
/// closest ranks.
double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank =
      p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Summary Summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  size_t mid = values.size() / 2;
  s.median = values.size() % 2 == 1
                 ? values[mid]
                 : 0.5 * (values[mid - 1] + values[mid]);
  s.p90 = SortedPercentile(values, 90.0);
  s.p99 = SortedPercentile(values, 99.0);
  return s;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return SortedPercentile(values, p);
}

double PercentileWeighted(const std::vector<double>& values,
                          const std::vector<uint64_t>& weights, double p) {
  if (values.empty() || values.size() != weights.size()) return 0.0;
  std::vector<std::pair<double, uint64_t>> sample;
  sample.reserve(values.size());
  uint64_t total = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (weights[i] == 0) continue;
    sample.emplace_back(values[i], weights[i]);
    total += weights[i];
  }
  if (total == 0) return 0.0;
  std::sort(sample.begin(), sample.end());
  // Rank on the expanded sample (total entries), linear interpolation
  // between the two closest expanded ranks — the same convention as
  // SortedPercentile above.
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total - 1);
  const uint64_t lo = static_cast<uint64_t>(std::floor(rank));
  const uint64_t hi = static_cast<uint64_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  double v_lo = 0.0, v_hi = 0.0;
  uint64_t seen = 0;
  for (const auto& [value, weight] : sample) {
    if (seen <= lo && lo < seen + weight) v_lo = value;
    if (seen <= hi && hi < seen + weight) {
      v_hi = value;
      break;
    }
    seen += weight;
  }
  return v_lo + (v_hi - v_lo) * frac;
}

double FractionAbove(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  size_t count = 0;
  for (double v : values) {
    if (v > threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace irbuf::metrics
