// Retrieval-effectiveness measures (Section 2.2): precision, recall and
// the non-interpolated average precision the paper uses (one of the TREC
// metrics — Section 4.1, footnote 10).

#ifndef IRBUF_METRICS_EFFECTIVENESS_H_
#define IRBUF_METRICS_EFFECTIVENESS_H_

#include <cstddef>
#include <vector>

#include "core/query.h"
#include "storage/types.h"

namespace irbuf::metrics {

/// Fraction of the first `k` ranked answers that are relevant.
/// `relevant` must be sorted ascending.
double PrecisionAtK(const std::vector<core::ScoredDoc>& ranked,
                    const std::vector<DocId>& relevant, size_t k);

/// Fraction of all relevant documents found anywhere in `ranked`.
double Recall(const std::vector<core::ScoredDoc>& ranked,
              const std::vector<DocId>& relevant);

/// Non-interpolated average precision: the mean, over all relevant
/// documents, of the precision at each relevant document's rank (0 for
/// relevant documents not retrieved).
double AveragePrecision(const std::vector<core::ScoredDoc>& ranked,
                        const std::vector<DocId>& relevant);

}  // namespace irbuf::metrics

#endif  // IRBUF_METRICS_EFFECTIVENESS_H_
