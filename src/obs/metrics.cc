#include "obs/metrics.h"

#include "metrics/run_stats.h"
#include "obs/json.h"
#include "util/str.h"

namespace irbuf::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> snapshot(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    snapshot[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

double Histogram::Percentile(double p) const {
  if (bounds_.empty()) return 0.0;
  // Bucket representatives: the first bucket's lower edge is taken as 0
  // (every recorded quantity in this codebase is non-negative), interior
  // buckets use their midpoint, and the open +inf bucket is pinned to
  // the last finite bound.
  std::vector<double> representatives(counts_.size());
  representatives[0] = bounds_[0] / 2.0;
  for (size_t i = 1; i < bounds_.size(); ++i) {
    representatives[i] = (bounds_[i - 1] + bounds_[i]) / 2.0;
  }
  representatives[bounds_.size()] = bounds_.back();
  return metrics::PercentileWeighted(representatives, bucket_counts(), p);
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry::Entry* MetricsRegistry::Find(std::string_view name) {
  for (auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

const MetricsRegistry::Entry* MetricsRegistry::Find(
    std::string_view name) const {
  for (const auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::AddCounter(std::string name, std::string help) {
  MutexLock lock(mu_);
  if (Entry* e = Find(name)) {
    return e->kind == Kind::kCounter ? e->counter.get() : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->kind = Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* handle = entry->counter.get();
  entries_.push_back(std::move(entry));
  return handle;
}

Gauge* MetricsRegistry::AddGauge(std::string name, std::string help) {
  MutexLock lock(mu_);
  if (Entry* e = Find(name)) {
    return e->kind == Kind::kGauge ? e->gauge.get() : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->kind = Kind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* handle = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return handle;
}

Histogram* MetricsRegistry::AddHistogram(std::string name,
                                         std::vector<double> bounds,
                                         std::string help) {
  MutexLock lock(mu_);
  if (Entry* e = Find(name)) {
    return e->kind == Kind::kHistogram ? e->histogram.get() : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->kind = Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* handle = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return handle;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  MutexLock lock(mu_);
  const Entry* e = Find(name);
  return e != nullptr && e->kind == Kind::kCounter ? e->counter.get()
                                                   : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  MutexLock lock(mu_);
  const Entry* e = Find(name);
  return e != nullptr && e->kind == Kind::kGauge ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(
    std::string_view name) const {
  MutexLock lock(mu_);
  const Entry* e = Find(name);
  return e != nullptr && e->kind == Kind::kHistogram ? e->histogram.get()
                                                     : nullptr;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter: e->counter->Reset(); break;
      case Kind::kGauge: e->gauge->Reset(); break;
      case Kind::kHistogram: e->histogram->Reset(); break;
    }
  }
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& e : entries_) {
    if (e->kind == Kind::kCounter) w.Key(e->name).UInt(e->counter->value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& e : entries_) {
    if (e->kind == Kind::kGauge) w.Key(e->name).Num(e->gauge->value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& e : entries_) {
    if (e->kind != Kind::kHistogram) continue;
    const Histogram& h = *e->histogram;
    w.Key(e->name).BeginObject();
    w.Key("count").UInt(h.count());
    w.Key("sum").Num(h.sum());
    w.Key("p50").Num(h.Percentile(50.0));
    w.Key("p90").Num(h.Percentile(90.0));
    w.Key("p99").Num(h.Percentile(99.0));
    w.Key("bounds").BeginArray();
    for (double b : h.bounds()) w.Num(b);
    w.EndArray();
    w.Key("buckets").BeginArray();
    for (uint64_t c : h.bucket_counts()) w.UInt(c);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).Take();
}

std::string MetricsRegistry::DumpText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        out += StrFormat("%-40s %llu\n", e->name.c_str(),
                         static_cast<unsigned long long>(
                             e->counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("%-40s %.6g\n", e->name.c_str(),
                         e->gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        const std::vector<uint64_t> buckets = h.bucket_counts();
        out += StrFormat(
            "%-40s count=%llu mean=%.3f p50=%.3f p90=%.3f p99=%.3f [",
            e->name.c_str(), static_cast<unsigned long long>(h.count()),
            h.Mean(), h.Percentile(50.0), h.Percentile(90.0),
            h.Percentile(99.0));
        for (size_t i = 0; i < buckets.size(); ++i) {
          if (i > 0) out += ' ';
          if (i < h.bounds().size()) {
            out += StrFormat("<=%.6g:%llu", h.bounds()[i],
                             static_cast<unsigned long long>(buckets[i]));
          } else {
            out += StrFormat("+inf:%llu",
                             static_cast<unsigned long long>(buckets[i]));
          }
        }
        out += "]\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace irbuf::obs
