#include "obs/metrics.h"

#include "obs/json.h"
#include "util/str.h"

namespace irbuf::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

void Histogram::Observe(double value) {
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += value;
}

void Histogram::Reset() {
  counts_.assign(counts_.size(), 0);
  count_ = 0;
  sum_ = 0.0;
}

MetricsRegistry::Entry* MetricsRegistry::Find(std::string_view name) {
  for (auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

const MetricsRegistry::Entry* MetricsRegistry::Find(
    std::string_view name) const {
  for (const auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::AddCounter(std::string name, std::string help) {
  if (Entry* e = Find(name)) {
    return e->kind == Kind::kCounter ? e->counter.get() : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->kind = Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* handle = entry->counter.get();
  entries_.push_back(std::move(entry));
  return handle;
}

Gauge* MetricsRegistry::AddGauge(std::string name, std::string help) {
  if (Entry* e = Find(name)) {
    return e->kind == Kind::kGauge ? e->gauge.get() : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->kind = Kind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* handle = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return handle;
}

Histogram* MetricsRegistry::AddHistogram(std::string name,
                                         std::vector<double> bounds,
                                         std::string help) {
  if (Entry* e = Find(name)) {
    return e->kind == Kind::kHistogram ? e->histogram.get() : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->kind = Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* handle = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return handle;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  const Entry* e = Find(name);
  return e != nullptr && e->kind == Kind::kCounter ? e->counter.get()
                                                   : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  const Entry* e = Find(name);
  return e != nullptr && e->kind == Kind::kGauge ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(
    std::string_view name) const {
  const Entry* e = Find(name);
  return e != nullptr && e->kind == Kind::kHistogram ? e->histogram.get()
                                                     : nullptr;
}

void MetricsRegistry::Reset() {
  for (auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter: e->counter->Reset(); break;
      case Kind::kGauge: e->gauge->Reset(); break;
      case Kind::kHistogram: e->histogram->Reset(); break;
    }
  }
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& e : entries_) {
    if (e->kind == Kind::kCounter) w.Key(e->name).UInt(e->counter->value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& e : entries_) {
    if (e->kind == Kind::kGauge) w.Key(e->name).Num(e->gauge->value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& e : entries_) {
    if (e->kind != Kind::kHistogram) continue;
    const Histogram& h = *e->histogram;
    w.Key(e->name).BeginObject();
    w.Key("count").UInt(h.count());
    w.Key("sum").Num(h.sum());
    w.Key("bounds").BeginArray();
    for (double b : h.bounds()) w.Num(b);
    w.EndArray();
    w.Key("buckets").BeginArray();
    for (uint64_t c : h.bucket_counts()) w.UInt(c);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).Take();
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        out += StrFormat("%-40s %llu\n", e->name.c_str(),
                         static_cast<unsigned long long>(
                             e->counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("%-40s %.6g\n", e->name.c_str(),
                         e->gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        out += StrFormat("%-40s count=%llu mean=%.3f [", e->name.c_str(),
                         static_cast<unsigned long long>(h.count()),
                         h.Mean());
        for (size_t i = 0; i < h.bucket_counts().size(); ++i) {
          if (i > 0) out += ' ';
          if (i < h.bounds().size()) {
            out += StrFormat("<=%.6g:%llu", h.bounds()[i],
                             static_cast<unsigned long long>(
                                 h.bucket_counts()[i]));
          } else {
            out += StrFormat("+inf:%llu",
                             static_cast<unsigned long long>(
                                 h.bucket_counts()[i]));
          }
        }
        out += "]\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace irbuf::obs
