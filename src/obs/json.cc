#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace irbuf::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Str(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Num(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no inf/nan.
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

}  // namespace irbuf::obs
