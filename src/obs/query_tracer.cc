#include "obs/query_tracer.h"

#include "obs/json.h"
#include "util/str.h"

namespace irbuf::obs {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kStepBegin: return "step_begin";
    case TraceEventKind::kQueryBegin: return "query_begin";
    case TraceEventKind::kTermBegin: return "term_begin";
    case TraceEventKind::kPhase: return "phase";
    case TraceEventKind::kSmax: return "smax";
    case TraceEventKind::kFetch: return "fetch";
    case TraceEventKind::kEvict: return "evict";
    case TraceEventKind::kAccumulators: return "accumulators";
    case TraceEventKind::kTermSkip: return "term_skip";
    case TraceEventKind::kTermEnd: return "term_end";
    case TraceEventKind::kQueryEnd: return "query_end";
    case TraceEventKind::kRetry: return "retry";
    case TraceEventKind::kBreaker: return "breaker";
    case TraceEventKind::kPageLost: return "page_lost";
  }
  return "unknown";
}

void QueryTracer::Push(TraceEvent event) {
  event.step = step_;
  events_.push_back(event);
}

void QueryTracer::BeginStep(uint32_t step) {
  step_ = step;
  TraceEvent e;
  e.kind = TraceEventKind::kStepBegin;
  e.n = step;
  Push(e);
}

void QueryTracer::BeginQuery(uint64_t num_terms) {
  TraceEvent e;
  e.kind = TraceEventKind::kQueryBegin;
  e.n = num_terms;
  Push(e);
}

void QueryTracer::EndQuery(double smax, uint64_t accumulators) {
  TraceEvent e;
  e.kind = TraceEventKind::kQueryEnd;
  e.a = smax;
  e.n = accumulators;
  Push(e);
}

void QueryTracer::BeginTerm(TermId term, uint32_t total_pages, double f_ins,
                            double f_add) {
  TraceEvent e;
  e.kind = TraceEventKind::kTermBegin;
  e.term = term;
  e.a = f_ins;
  e.b = f_add;
  e.n = total_pages;
  Push(e);
}

void QueryTracer::EndTerm(TermId term, double smax_after, uint64_t postings) {
  TraceEvent e;
  e.kind = TraceEventKind::kTermEnd;
  e.term = term;
  e.a = smax_after;
  e.n = postings;
  Push(e);
}

void QueryTracer::SkipTerm(TermId term, double fmax, double f_add) {
  TraceEvent e;
  e.kind = TraceEventKind::kTermSkip;
  e.term = term;
  e.a = fmax;
  e.b = f_add;
  Push(e);
}

void QueryTracer::Phase(TermId term, const char* transition) {
  TraceEvent e;
  e.kind = TraceEventKind::kPhase;
  e.term = term;
  e.phase = transition;
  Push(e);
}

void QueryTracer::Smax(TermId term, double before, double after) {
  TraceEvent e;
  e.kind = TraceEventKind::kSmax;
  e.term = term;
  e.a = before;
  e.b = after;
  Push(e);
}

void QueryTracer::Fetch(TermId term, uint32_t page_no, bool hit) {
  TraceEvent e;
  e.kind = TraceEventKind::kFetch;
  e.term = term;
  e.page_no = page_no;
  e.hit = hit;
  Push(e);
}

void QueryTracer::Evict(TermId term, uint32_t page_no, double max_weight,
                        double value, uint64_t age_fetches) {
  TraceEvent e;
  e.kind = TraceEventKind::kEvict;
  e.term = term;
  e.page_no = page_no;
  e.a = max_weight;
  e.b = value;
  e.n = age_fetches;
  Push(e);
}

void QueryTracer::Accumulators(uint64_t size) {
  TraceEvent e;
  e.kind = TraceEventKind::kAccumulators;
  e.n = size;
  Push(e);
}

void QueryTracer::Retry(TermId term, uint32_t page_no, uint64_t attempts,
                        bool recovered) {
  TraceEvent e;
  e.kind = TraceEventKind::kRetry;
  e.term = term;
  e.page_no = page_no;
  e.n = attempts;
  e.hit = recovered;
  Push(e);
}

void QueryTracer::Breaker(TermId term, uint32_t page_no, const char* note) {
  TraceEvent e;
  e.kind = TraceEventKind::kBreaker;
  e.term = term;
  e.page_no = page_no;
  e.phase = note;
  Push(e);
}

void QueryTracer::PageLost(TermId term, uint32_t page_no, double bound) {
  TraceEvent e;
  e.kind = TraceEventKind::kPageLost;
  e.term = term;
  e.page_no = page_no;
  e.a = bound;
  Push(e);
}

size_t QueryTracer::CountKind(TraceEventKind kind) const {
  size_t count = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++count;
  }
  return count;
}

std::vector<double> QueryTracer::SmaxTrajectory(uint32_t step) const {
  std::vector<double> trajectory;
  for (const TraceEvent& e : events_) {
    if (e.step == step && e.kind == TraceEventKind::kTermEnd) {
      trajectory.push_back(e.a);
    }
  }
  return trajectory;
}

void QueryTracer::Clear() {
  events_.clear();
  step_ = 0;
}

namespace {

/// Appends `e` as one JSON object with kind-specific keys.
void EventToJson(const TraceEvent& e, JsonWriter* w) {
  w->BeginObject();
  w->Key("kind").Str(TraceEventKindName(e.kind));
  w->Key("step").UInt(e.step);
  switch (e.kind) {
    case TraceEventKind::kStepBegin:
      break;
    case TraceEventKind::kQueryBegin:
      w->Key("terms").UInt(e.n);
      break;
    case TraceEventKind::kQueryEnd:
      w->Key("smax").Num(e.a);
      w->Key("accumulators").UInt(e.n);
      break;
    case TraceEventKind::kTermBegin:
      w->Key("term").UInt(e.term);
      w->Key("f_ins").Num(e.a);
      w->Key("f_add").Num(e.b);
      w->Key("pages").UInt(e.n);
      break;
    case TraceEventKind::kTermEnd:
      w->Key("term").UInt(e.term);
      w->Key("smax").Num(e.a);
      w->Key("postings").UInt(e.n);
      break;
    case TraceEventKind::kTermSkip:
      w->Key("term").UInt(e.term);
      w->Key("fmax").Num(e.a);
      w->Key("f_add").Num(e.b);
      break;
    case TraceEventKind::kPhase:
      w->Key("term").UInt(e.term);
      w->Key("transition").Str(e.phase != nullptr ? e.phase : "");
      break;
    case TraceEventKind::kSmax:
      w->Key("term").UInt(e.term);
      w->Key("before").Num(e.a);
      w->Key("after").Num(e.b);
      break;
    case TraceEventKind::kFetch:
      w->Key("term").UInt(e.term);
      w->Key("page").UInt(e.page_no);
      w->Key("hit").Bool(e.hit);
      break;
    case TraceEventKind::kEvict:
      w->Key("term").UInt(e.term);
      w->Key("page").UInt(e.page_no);
      w->Key("max_weight").Num(e.a);
      w->Key("value").Num(e.b);
      w->Key("age").UInt(e.n);
      break;
    case TraceEventKind::kAccumulators:
      w->Key("size").UInt(e.n);
      break;
    case TraceEventKind::kRetry:
      w->Key("term").UInt(e.term);
      w->Key("page").UInt(e.page_no);
      w->Key("attempts").UInt(e.n);
      w->Key("recovered").Bool(e.hit);
      break;
    case TraceEventKind::kBreaker:
      w->Key("term").UInt(e.term);
      w->Key("page").UInt(e.page_no);
      w->Key("note").Str(e.phase != nullptr ? e.phase : "");
      break;
    case TraceEventKind::kPageLost:
      w->Key("term").UInt(e.term);
      w->Key("page").UInt(e.page_no);
      w->Key("bound").Num(e.a);
      break;
  }
  w->EndObject();
}

}  // namespace

std::string QueryTracer::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("events").BeginArray();
  for (const TraceEvent& e : events_) EventToJson(e, &w);
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

std::string QueryTracer::DumpText() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += StrFormat("[%u] %-12s", e.step, TraceEventKindName(e.kind));
    switch (e.kind) {
      case TraceEventKind::kStepBegin:
        break;
      case TraceEventKind::kQueryBegin:
        out += StrFormat(" terms=%llu",
                         static_cast<unsigned long long>(e.n));
        break;
      case TraceEventKind::kQueryEnd:
        out += StrFormat(" smax=%.3f accumulators=%llu", e.a,
                         static_cast<unsigned long long>(e.n));
        break;
      case TraceEventKind::kTermBegin:
        out += StrFormat(" term=%u f_ins=%.3f f_add=%.3f pages=%llu",
                         e.term, e.a, e.b,
                         static_cast<unsigned long long>(e.n));
        break;
      case TraceEventKind::kTermEnd:
        out += StrFormat(" term=%u smax=%.3f postings=%llu", e.term, e.a,
                         static_cast<unsigned long long>(e.n));
        break;
      case TraceEventKind::kTermSkip:
        out += StrFormat(" term=%u fmax=%.3f f_add=%.3f", e.term, e.a,
                         e.b);
        break;
      case TraceEventKind::kPhase:
        out += StrFormat(" term=%u %s", e.term,
                         e.phase != nullptr ? e.phase : "");
        break;
      case TraceEventKind::kSmax:
        out += StrFormat(" term=%u %.3f -> %.3f", e.term, e.a, e.b);
        break;
      case TraceEventKind::kFetch:
        out += StrFormat(" term=%u page=%u %s", e.term, e.page_no,
                         e.hit ? "hit" : "miss");
        break;
      case TraceEventKind::kEvict:
        out += StrFormat(
            " term=%u page=%u max_weight=%.3f value=%.3f age=%llu",
            e.term, e.page_no, e.a, e.b,
            static_cast<unsigned long long>(e.n));
        break;
      case TraceEventKind::kAccumulators:
        out += StrFormat(" size=%llu",
                         static_cast<unsigned long long>(e.n));
        break;
      case TraceEventKind::kRetry:
        out += StrFormat(" term=%u page=%u attempts=%llu %s", e.term,
                         e.page_no, static_cast<unsigned long long>(e.n),
                         e.hit ? "recovered" : "failed");
        break;
      case TraceEventKind::kBreaker:
        out += StrFormat(" term=%u page=%u %s", e.term, e.page_no,
                         e.phase != nullptr ? e.phase : "");
        break;
      case TraceEventKind::kPageLost:
        out += StrFormat(" term=%u page=%u bound=%.3f", e.term, e.page_no,
                         e.a);
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace irbuf::obs
