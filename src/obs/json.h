// A minimal streaming JSON writer shared by every telemetry producer
// (metrics snapshots, query traces, bench run records). No DOM, no
// allocation beyond the output string; callers drive Begin/End pairs and
// the writer handles commas, escaping and number formatting so every
// producer emits the same dialect.

#ifndef IRBUF_OBS_JSON_H_
#define IRBUF_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace irbuf::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view s);

/// Streaming writer. Usage:
///
///   JsonWriter w;
///   w.BeginObject().Key("reads").UInt(42).Key("tag").Str("hot");
///   w.EndObject();
///   std::string json = std::move(w).Take();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits `"name":`; must be followed by exactly one value.
  JsonWriter& Key(std::string_view name);

  JsonWriter& Str(std::string_view value);
  JsonWriter& Num(double value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices pre-rendered JSON as one value (the caller guarantees it is
  /// well formed).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true once the first element was
  /// written (so the next one needs a comma).
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace irbuf::obs

#endif  // IRBUF_OBS_JSON_H_
