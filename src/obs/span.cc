#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "metrics/run_stats.h"

namespace irbuf::obs {
namespace {

/// One-entry cache resolving "this thread's buffer in that recorder".
/// Keyed on the recorder's process-unique id: a recorder at a reused
/// address can never hit a stale entry, it just re-registers.
struct TlsBufferCache {
  uint64_t recorder_id = 0;  // 0 is never a valid recorder id
  SpanRecorder::ThreadBuffer* buffer = nullptr;
};

thread_local TlsBufferCache tls_cache;

uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* SpanStageName(SpanStage stage) {
  switch (stage) {
    case SpanStage::kQueueWait:       return "queue_wait";
    case SpanStage::kContextSnapshot: return "context_snapshot";
    case SpanStage::kEvaluate:        return "evaluate";
    case SpanStage::kTermLoop:        return "term_loop";
    case SpanStage::kPagePin:         return "page_pin";
    case SpanStage::kMissRead:        return "miss_read";
    case SpanStage::kCrcVerify:       return "crc_verify";
    case SpanStage::kBlockDecode:     return "block_decode";
    case SpanStage::kAccumulate:      return "accumulate";
    case SpanStage::kTopKMerge:       return "topk_merge";
    case SpanStage::kShardMerge:      return "shard_merge";
    case SpanStage::kLockWait:        return "lock_wait";
    case SpanStage::kPrefetchIssue:   return "prefetch_issue";
    case SpanStage::kAsyncWait:       return "async_wait";
  }
  return "unknown";
}

SpanRecorder::SpanRecorder() : id_(NextRecorderId()) {}

SpanRecorder::ThreadBuffer* SpanRecorder::BufferForThisThread() {
  if (tls_cache.recorder_id == id_) return tls_cache.buffer;
  // Register. A thread alternating between two live recorders would
  // re-register (and get a fresh tid) on every switch; the serve paths
  // use one recorder per run, so the cache is effectively permanent.
  MutexLock lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  buffer->tid = static_cast<uint32_t>(buffers_.size() - 1);
  tls_cache = {id_, buffer};
  return buffer;
}

void SpanRecorder::RecordManual(SpanStage stage, uint64_t start_ns,
                                uint64_t end_ns, uint32_t query,
                                uint32_t term) {
  ThreadBuffer* buffer = BufferForThisThread();
  const uint64_t dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  MutexLock lock(buffer->mu);
  buffer->spans.push_back(Span{start_ns, dur_ns, query, term, stage,
                               static_cast<uint8_t>(buffer->depth)});
}

void SpanRecorder::RecordLockWait(uint64_t wait_ns) {
  ThreadBuffer* buffer = BufferForThisThread();
  const uint64_t end_ns = MonotonicNowNs();
  MutexLock lock(buffer->mu);
  buffer->spans.push_back(Span{end_ns - wait_ns, wait_ns,
                               buffer->current_query, 0,
                               SpanStage::kLockWait,
                               static_cast<uint8_t>(buffer->depth)});
}

std::vector<ThreadSpans> SpanRecorder::Snapshot() const {
  std::vector<ThreadSpans> out;
  MutexLock lock(mu_);
  out.reserve(buffers_.size());
  for (const auto& buffer : buffers_) {
    ThreadSpans ts;
    ts.tid = buffer->tid;
    {
      MutexLock buf_lock(buffer->mu);
      ts.spans = buffer->spans;
    }
    out.push_back(std::move(ts));
  }
  return out;
}

void SpanRecorder::Clear() {
  MutexLock lock(mu_);
  for (const auto& buffer : buffers_) {
    MutexLock buf_lock(buffer->mu);
    buffer->spans.clear();
  }
}

std::string ToChromeTraceJson(const std::vector<ThreadSpans>& threads) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Str("ms");
  w.Key("traceEvents").BeginArray();
  for (const ThreadSpans& ts : threads) {
    for (const Span& s : ts.spans) {
      w.BeginObject();
      w.Key("name").Str(SpanStageName(s.stage));
      w.Key("cat").Str("irbuf");
      w.Key("ph").Str("X");
      w.Key("ts").Num(static_cast<double>(s.start_ns) / 1000.0);
      w.Key("dur").Num(static_cast<double>(s.dur_ns) / 1000.0);
      w.Key("pid").UInt(1);
      w.Key("tid").UInt(ts.tid);
      w.Key("args").BeginObject();
      if (s.query != SpanRecorder::kNoQuery) w.Key("query").UInt(s.query);
      if (s.term != 0) w.Key("term").UInt(s.term);
      w.EndObject();
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

SpanAttribution ComputeAttribution(const std::vector<ThreadSpans>& threads) {
  // Per-query accounting: wall = sum of that query's depth-0 spans
  // (queue wait + context snapshot + evaluate ≈ client-visible
  // latency); per-stage totals are inclusive over all depths.
  struct PerQuery {
    uint64_t wall_ns = 0;
    std::array<uint64_t, kNumSpanStages> stage_ns{};
  };
  std::unordered_map<uint32_t, PerQuery> queries;

  SpanAttribution attr;
  for (const ThreadSpans& ts : threads) {
    for (const Span& s : ts.spans) {
      const size_t stage = static_cast<size_t>(s.stage);
      attr.stages[stage].spans++;
      attr.stages[stage].total_ns += s.dur_ns;
      if (s.query == SpanRecorder::kNoQuery) continue;
      PerQuery& q = queries[s.query];
      q.stage_ns[stage] += s.dur_ns;
      if (s.depth == 0) q.wall_ns += s.dur_ns;
    }
  }
  attr.queries = queries.size();
  if (queries.empty()) return attr;

  std::vector<double> walls;
  walls.reserve(queries.size());
  for (const auto& [id, q] : queries) {
    walls.push_back(static_cast<double>(q.wall_ns));
  }
  const double wall_p99_ns = metrics::Percentile(walls, 99.0);
  attr.wall_p50_us = metrics::Percentile(walls, 50.0) / 1000.0;
  attr.wall_p99_us = wall_p99_ns / 1000.0;

  // The p99 bucket: queries whose wall reaches the wall p99. Each
  // stage's share is its inclusive time over the bucket's summed wall —
  // the "what dominates the slow queries" column.
  uint64_t bucket_wall_ns = 0;
  std::array<uint64_t, kNumSpanStages> bucket_stage_ns{};
  for (const auto& [id, q] : queries) {
    if (static_cast<double>(q.wall_ns) < wall_p99_ns) continue;
    bucket_wall_ns += q.wall_ns;
    for (size_t i = 0; i < kNumSpanStages; ++i) {
      bucket_stage_ns[i] += q.stage_ns[i];
    }
  }

  std::vector<double> stage_totals(queries.size());
  for (size_t stage = 0; stage < kNumSpanStages; ++stage) {
    size_t i = 0;
    for (const auto& [id, q] : queries) {
      stage_totals[i++] = static_cast<double>(q.stage_ns[stage]);
    }
    SpanAttribution::Stage& s = attr.stages[stage];
    s.p50_us = metrics::Percentile(stage_totals, 50.0) / 1000.0;
    s.p99_us = metrics::Percentile(stage_totals, 99.0) / 1000.0;
    if (bucket_wall_ns > 0) {
      s.p99_share = static_cast<double>(bucket_stage_ns[stage]) /
                    static_cast<double>(bucket_wall_ns);
    }
  }
  return attr;
}

void AppendAttributionJson(const SpanAttribution& attr, JsonWriter& w) {
  w.BeginObject();
  w.Key("queries").UInt(attr.queries);
  w.Key("wall_us").BeginObject();
  w.Key("p50").Num(attr.wall_p50_us);
  w.Key("p99").Num(attr.wall_p99_us);
  w.EndObject();
  w.Key("stages").BeginObject();
  for (size_t i = 0; i < kNumSpanStages; ++i) {
    const SpanAttribution::Stage& s = attr.stages[i];
    w.Key(SpanStageName(static_cast<SpanStage>(i))).BeginObject();
    w.Key("spans").UInt(s.spans);
    w.Key("total_us").Num(static_cast<double>(s.total_ns) / 1000.0);
    w.Key("p50_us").Num(s.p50_us);
    w.Key("p99_us").Num(s.p99_us);
    w.Key("p99_share").Num(s.p99_share);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

void AppendMutexWaitJson(const MutexWaitStats& stats, JsonWriter& w) {
  w.BeginObject();
  w.Key("acquisitions").UInt(stats.acquisitions());
  w.Key("contended").UInt(stats.contended());
  w.Key("wait_ns_total").UInt(stats.wait_ns_total());
  w.Key("wait_hist_us").BeginArray();
  for (size_t i = 0; i < MutexWaitStats::kBuckets; ++i) {
    const uint64_t count = stats.bucket(i);
    if (count == 0) continue;
    w.BeginArray();
    w.UInt(MutexWaitStats::BucketLowerBoundUs(i));
    w.UInt(count);
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();
}

void MutexWaitBinding::Bind(MutexWaitStats* stats, Histogram* hist,
                            SpanRecorder* recorder) {
  hist_ = hist;
  recorder_ = recorder;
  stats->SetObserver(&MutexWaitBinding::Observe, this);
}

void MutexWaitBinding::Observe(void* ctx, uint64_t wait_ns) {
  auto* binding = static_cast<MutexWaitBinding*>(ctx);
  if (binding->hist_ != nullptr) {
    binding->hist_->Observe(static_cast<double>(wait_ns) / 1000.0);
  }
  if (binding->recorder_ != nullptr) {
    binding->recorder_->RecordLockWait(wait_ns);
  }
}

std::vector<double> MutexWaitHistogramBounds() {
  // Mirror the MutexWaitStats log2 layout: bucket i's inclusive upper
  // bound is 2^i - <1us granularity>; using the power itself keeps the
  // histogram's Percentile within the same half-bucket error story.
  std::vector<double> bounds;
  bounds.reserve(MutexWaitStats::kBuckets - 1);
  for (size_t i = 0; i + 1 < MutexWaitStats::kBuckets; ++i) {
    bounds.push_back(static_cast<double>(uint64_t{1} << i));
  }
  return bounds;
}

}  // namespace irbuf::obs
