// Span-based latency attribution for the concurrent serve path.
//
// A SpanRecorder collects timed, nested stage spans from every worker
// thread so a serve run can answer "where did the p99 query's time go"
// instead of only "what was the p99". Design constraints, in order:
//
//   1. Disabled must be free. Every instrumentation site holds a
//      `SpanRecorder*` that is nullptr when tracing is off, and
//      ScopedSpan's constructor is a single null test in that case — no
//      clock read, no thread-local lookup, no allocation. This is the
//      same nullptr-handle discipline the MetricsRegistry instruments
//      use, so rankings and counters are bit-identical with and without
//      the layer compiled in (pinned by obs_span_test's differential
//      case and the BM_SpanScope pair in bench_micro).
//   2. Enabled must not serialize workers. Each thread records into its
//      own ThreadBuffer, resolved through a one-entry thread-local
//      cache keyed on a process-unique recorder id (never an address,
//      which allocators reuse). A per-buffer mutex guards only that
//      buffer's vector, taken once per completed span; threads never
//      contend with each other, only with a concurrent Snapshot.
//   3. Timestamps share one timebase. Spans, lock waits and the serve
//      path's latency accounting all read util/monotonic_clock.h, so a
//      Chrome trace assembled from them lines up in Perfetto.
//
// Exports: Chrome trace_event JSON (ToChromeTraceJson — load the file
// in ui.perfetto.dev or chrome://tracing) and a per-stage p50/p99
// decomposition (ComputeAttribution / AppendAttributionJson) that
// bench_serve_throughput embeds in its telemetry and
// tools/bench/attribution_report.py renders.

#ifndef IRBUF_OBS_SPAN_H_
#define IRBUF_OBS_SPAN_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/monotonic_clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace irbuf::obs {

/// The stages of a served query's life that the serve path is
/// instrumented to time. Nesting at the recording sites follows this
/// containment: Evaluate > TermLoop > {PagePin > MissRead > {CrcVerify,
/// BlockDecode}, Accumulate} and Evaluate > TopKMerge; QueueWait and
/// ContextSnapshot are top-level siblings of Evaluate. LockWait spans
/// are injected by the mutex-contention bridge at whatever depth the
/// blocked thread happened to be.
enum class SpanStage : uint8_t {
  kQueueWait = 0,    // admission-queue dwell: submit → worker pickup
  kContextSnapshot,  // shared query-context registration
  kEvaluate,         // whole evaluator call
  kTermLoop,         // one query term's posting traversal
  kPagePin,          // buffer-pool FetchPinned (hit or miss)
  kMissRead,         // miss path: disk read + simulated seek delay
  kCrcVerify,        // page checksum verification inside the disk read
  kBlockDecode,      // posting-block decode inside the disk read
  kAccumulate,       // accumulator updates for one fetched page
  kTopKMerge,        // final top-k selection
  kShardMerge,       // scatter-gather merge of per-shard partial top-k
  kLockWait,         // contended mutex acquisition (via MutexWaitStats)
  kPrefetchIssue,    // one readahead load on a background I/O worker
  kAsyncWait,        // a fetch blocked joining an in-flight page load
};

inline constexpr size_t kNumSpanStages = 14;

/// Short stable identifier ("queue_wait", "block_decode", ...) used as
/// the Chrome-trace event name and the attribution-table key.
const char* SpanStageName(SpanStage stage);

/// One completed span. 32 bytes; buffers hold millions without drama.
struct Span {
  uint64_t start_ns;  // MonotonicNowNs at entry
  uint64_t dur_ns;
  uint32_t query;     // SpanRecorder::kNoQuery when not query-attributed
  uint32_t term;      // term id for kTermLoop/kPagePin/... ; 0 otherwise
  SpanStage stage;
  uint8_t depth;      // nesting depth on the recording thread (0 = root)
};

/// All spans one thread recorded, keyed by its stable registration
/// index (the Chrome-trace tid).
struct ThreadSpans {
  uint32_t tid;
  std::vector<Span> spans;
};

/// Thread-safe collector of spans from any number of threads. One
/// recorder instruments one serve run (a bench cell, a CLI serve
/// session); Snapshot() after the workers drain, Clear() to reuse.
class SpanRecorder {
 public:
  /// `query` value for spans recorded outside any query's service.
  static constexpr uint32_t kNoQuery = 0xFFFFFFFFu;

  /// Per-thread span storage. `depth` and `current_query` are written
  /// only by the owning thread (no synchronization needed); `spans` is
  /// shared with Snapshot/Clear and guarded by `mu`.
  struct ThreadBuffer {
    Mutex mu;
    std::vector<Span> spans IRBUF_GUARDED_BY(mu);
    uint32_t depth = 0;               // owner thread only
    uint32_t current_query = kNoQuery;  // owner thread only
    uint32_t tid = 0;                 // registration index, frozen
  };

  SpanRecorder();
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Tags every subsequent span recorded *by the calling thread* with
  /// `query` (workers call this when they pick a task up, and reset to
  /// kNoQuery when done, so inter-query lock waits are not charged to
  /// the previous query).
  void SetCurrentQuery(uint32_t query) {
    BufferForThisThread()->current_query = query;
  }

  /// Records an already-timed span on the calling thread at its current
  /// nesting depth — for intervals whose start predates the recording
  /// thread's involvement (queue wait: submit happened on the client
  /// thread, pickup on the worker).
  void RecordManual(SpanStage stage, uint64_t start_ns, uint64_t end_ns,
                    uint32_t query, uint32_t term = 0);

  /// Records a contended-lock wait that ended now on the calling
  /// thread, attributed to its current query. Called by the
  /// MutexWaitBinding observer, not by instrumentation sites directly.
  void RecordLockWait(uint64_t wait_ns);

  /// Copies out every thread's spans, ordered by registration. Safe
  /// concurrently with recording, but only quiesced snapshots (workers
  /// joined or idle) are complete — the benches' reporting pattern.
  std::vector<ThreadSpans> Snapshot() const;

  /// Drops all recorded spans; thread registrations and the per-thread
  /// query/depth state survive, so a recorder is reusable across bench
  /// cells without re-warming the thread-local caches.
  void Clear();

  /// Resolves (registering on first use) the calling thread's buffer.
  /// Fast path is one thread-local compare. Public for ScopedSpan; not
  /// an instrumentation API.
  ThreadBuffer* BufferForThisThread();

 private:
  /// Process-unique id the thread-local cache keys on. An address
  /// would be reused by the allocator and make a stale cache entry dump
  /// spans into the wrong (or freed) recorder.
  const uint64_t id_;

  mutable Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ IRBUF_GUARDED_BY(mu_);
};

/// RAII span: times its own scope on the recording thread and bumps the
/// thread's nesting depth so children know theirs. With a null
/// recorder the constructor is one branch and the destructor another —
/// the "disabled is free" contract.
class ScopedSpan {
 public:
  ScopedSpan(SpanRecorder* recorder, SpanStage stage, uint32_t term = 0) {
    if (recorder == nullptr) return;
    buf_ = recorder->BufferForThisThread();
    stage_ = stage;
    term_ = term;
    ++buf_->depth;
    start_ns_ = MonotonicNowNs();
  }

  ~ScopedSpan() {
    if (buf_ == nullptr) return;
    const uint64_t end_ns = MonotonicNowNs();
    const uint32_t depth = --buf_->depth;
    MutexLock lock(buf_->mu);
    buf_->spans.push_back(Span{start_ns_, end_ns - start_ns_,
                               buf_->current_query, term_, stage_,
                               static_cast<uint8_t>(depth)});
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanRecorder::ThreadBuffer* buf_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t term_ = 0;
  SpanStage stage_ = SpanStage::kQueueWait;
};

/// Renders a snapshot as Chrome trace_event JSON (complete "X" events,
/// microsecond timestamps, one trace tid per recording thread). Load
/// the result in ui.perfetto.dev or chrome://tracing.
std::string ToChromeTraceJson(const std::vector<ThreadSpans>& threads);

/// Per-run latency decomposition derived from a snapshot. All times
/// are inclusive (a kTermLoop total contains its page pins), so stage
/// shares are read per stage against the wall, not summed across
/// stages — see DESIGN.md §9 for the exact semantics.
struct SpanAttribution {
  struct Stage {
    uint64_t spans = 0;      // spans recorded for this stage
    uint64_t total_ns = 0;   // inclusive time across all queries
    double p50_us = 0.0;     // per-query stage-total percentiles,
    double p99_us = 0.0;     //   zero for queries that skip the stage
    double p99_share = 0.0;  // stage share of p99-bucket queries' wall
  };

  uint64_t queries = 0;      // distinct query ids seen
  double wall_p50_us = 0.0;  // per-query wall = sum of depth-0 spans
  double wall_p99_us = 0.0;
  std::array<Stage, kNumSpanStages> stages{};
};

/// Aggregates a snapshot: per-query wall from depth-0 spans, per-stage
/// per-query totals, and for the p99 bucket (queries with wall >= the
/// wall p99) each stage's share of the bucket's total wall — the table
/// that answers "which stage dominates the slow queries".
SpanAttribution ComputeAttribution(const std::vector<ThreadSpans>& threads);

/// Emits the attribution as one JSON object value:
///   {"queries":N,"wall_us":{"p50":..,"p99":..},
///    "stages":{"queue_wait":{"spans":..,"total_us":..,"p50_us":..,
///              "p99_us":..,"p99_share":..}, ...}}
/// The caller positions the writer (typically after Key("attribution")).
void AppendAttributionJson(const SpanAttribution& attr, JsonWriter& w);

/// Emits one MutexWaitStats as a JSON object value:
///   {"acquisitions":..,"contended":..,"wait_ns_total":..,
///    "wait_hist_us":[[lower_bound_us,count],...]}   (zero buckets
/// omitted). Shared by bench telemetry and the CLI.
void AppendMutexWaitJson(const MutexWaitStats& stats, JsonWriter& w);

/// Glue from util's dependency-free MutexWaitStats observer hook into
/// the obs layer: every contended wait is mirrored into `hist` (in
/// microseconds, for live MetricsRegistry export) and, when `recorder`
/// is non-null, recorded as a kLockWait span on the waiting thread so
/// contention shows up on the Perfetto timeline. The binding must
/// outlive the mutexes feeding `stats`.
class MutexWaitBinding {
 public:
  MutexWaitBinding() = default;
  MutexWaitBinding(const MutexWaitBinding&) = delete;
  MutexWaitBinding& operator=(const MutexWaitBinding&) = delete;

  void Bind(MutexWaitStats* stats, Histogram* hist, SpanRecorder* recorder);

 private:
  static void Observe(void* ctx, uint64_t wait_ns);

  Histogram* hist_ = nullptr;
  SpanRecorder* recorder_ = nullptr;
};

/// Histogram bounds (inclusive upper bounds, microseconds) matching the
/// MutexWaitStats log2 buckets, for registering "mutex.<name>.wait_us"
/// histograms in a MetricsRegistry.
std::vector<double> MutexWaitHistogramBounds();

}  // namespace irbuf::obs

#endif  // IRBUF_OBS_SPAN_H_
