// The metrics registry: named counters, gauges and fixed-bucket
// histograms that the storage/buffer/evaluator stack reports into and
// every bench and test reads out of.
//
// Hot-path cost discipline: instruments are resolved ONCE at wiring time
// (Add* returns a pointer-stable handle; re-registering a name returns
// the same handle) and events are recorded through those handles with no
// map lookups, no locks and no allocation. Components hold nullptr
// handles by default and guard every record with `if (handle)`, so an
// unwired system pays a single predictable branch per event.
//
// Thread safety: recording (Counter::Add, Gauge::Set/Add,
// Histogram::Observe) is lock-free via relaxed atomics, so the serving
// subsystem's worker threads share instruments without synchronization.
// Readers get point-in-time snapshots that are exact whenever the
// writers are quiesced (the benches' reporting pattern).

#ifndef IRBUF_OBS_METRICS_H_
#define IRBUF_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace irbuf::obs {

/// A monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time value (e.g. buffer residency of the hottest term).
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// first N buckets; an implicit +inf bucket catches the rest. Bucket
/// layout is frozen at registration, so Observe is a short linear scan
/// (bucket counts are small by design) followed by relaxed atomic
/// increments — no locks, no allocation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Upper bounds, excluding the implicit +inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Snapshot of the per-bucket counts; size() == bounds().size() + 1
  /// (last is +inf).
  std::vector<uint64_t> bucket_counts() const;

  /// Approximate `p`-th percentile (p in [0, 100]) of the observed
  /// sample, reconstructed from the bucket counts: each bucket is
  /// represented by its midpoint (the +inf bucket by the last finite
  /// bound) and the weighted rank interpolation is delegated to
  /// metrics::PercentileWeighted from run_stats. The error is bounded by
  /// half a bucket width; an empty histogram yields 0.
  double Percentile(double p) const;

  void Reset();

 private:
  std::vector<double> bounds_;
  /// Atomic per-bucket counts (vector sized at construction, never
  /// resized, so element addresses are stable and lock-free to update).
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Owns every instrument; handles stay valid for the registry's
/// lifetime. Registration and snapshot export are serialized by an
/// internal mutex; recording through handles never locks.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or re-resolves) an instrument by name. Registering an
  /// existing name returns the already-registered handle, so several
  /// components may bind the same registry idempotently. `help` is kept
  /// from the first registration.
  Counter* AddCounter(std::string name, std::string help = "");
  Gauge* AddGauge(std::string name, std::string help = "");
  /// `bounds` must be strictly increasing; ignored when `name` exists.
  Histogram* AddHistogram(std::string name, std::vector<double> bounds,
                          std::string help = "");

  /// Lookup without registration (tests, exporters); nullptr if absent
  /// or registered as a different kind.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Zeroes every instrument; registrations and handles survive.
  void Reset();

  size_t size() const {
    MutexLock lock(mu_);
    return entries_.size();
  }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  /// Human-readable snapshot, one instrument per line, registration
  /// order.
  std::string DumpText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* Find(std::string_view name) IRBUF_REQUIRES(mu_);
  const Entry* Find(std::string_view name) const IRBUF_REQUIRES(mu_);

  /// Guards entries_ (registration, lookup, export). Instruments
  /// themselves are atomic, so handle-based recording never takes it.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_ IRBUF_GUARDED_BY(mu_);
};

}  // namespace irbuf::obs

#endif  // IRBUF_OBS_METRICS_H_
