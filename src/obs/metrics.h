// The metrics registry: named counters, gauges and fixed-bucket
// histograms that the storage/buffer/evaluator stack reports into and
// every bench and test reads out of.
//
// Hot-path cost discipline: instruments are resolved ONCE at wiring time
// (Add* returns a pointer-stable handle; re-registering a name returns
// the same handle) and events are recorded through those handles with no
// map lookups, no locks and no allocation. Components hold nullptr
// handles by default and guard every record with `if (handle)`, so an
// unwired system pays a single predictable branch per event.

#ifndef IRBUF_OBS_METRICS_H_
#define IRBUF_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace irbuf::obs {

/// A monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// A point-in-time value (e.g. buffer residency of the hottest term).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// A fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// first N buckets; an implicit +inf bucket catches the rest. Bucket
/// layout is frozen at registration, so Observe is a short linear scan
/// (bucket counts are small by design) with no allocation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Upper bounds, excluding the implicit +inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last is +inf).
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Owns every instrument; handles stay valid for the registry's
/// lifetime. Not thread-safe (the simulator is single-threaded; a
/// sharded registry is the natural multi-user extension).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or re-resolves) an instrument by name. Registering an
  /// existing name returns the already-registered handle, so several
  /// components may bind the same registry idempotently. `help` is kept
  /// from the first registration.
  Counter* AddCounter(std::string name, std::string help = "");
  Gauge* AddGauge(std::string name, std::string help = "");
  /// `bounds` must be strictly increasing; ignored when `name` exists.
  Histogram* AddHistogram(std::string name, std::vector<double> bounds,
                          std::string help = "");

  /// Lookup without registration (tests, exporters); nullptr if absent
  /// or registered as a different kind.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Zeroes every instrument; registrations and handles survive.
  void Reset();

  size_t size() const { return entries_.size(); }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  /// Human-readable snapshot, one instrument per line, registration
  /// order.
  std::string DumpText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* Find(std::string_view name);
  const Entry* Find(std::string_view name) const;

  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace irbuf::obs

#endif  // IRBUF_OBS_METRICS_H_
