// QueryTracer: a structured per-query event timeline recorded by the
// whole stack — evaluation phase transitions (ins -> add -> drop in the
// filtering evaluators, grow -> capped/quit in quit/continue), Smax
// updates, per-term page fetches tagged hit/miss, evictions with victim
// metadata (term, max_weight, replacement value, age), and
// accumulator-set growth.
//
// Cost discipline: the tracer is OPTIONAL everywhere. Components hold a
// `QueryTracer*` that defaults to nullptr and guard every record with
// `if (tracer)`, so untraced runs pay one predictable branch per event
// site and nothing else. Recording appends one flat POD event to a
// vector; nothing is formatted until ToJson()/DumpText().

#ifndef IRBUF_OBS_QUERY_TRACER_H_
#define IRBUF_OBS_QUERY_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"

namespace irbuf::obs {

enum class TraceEventKind : uint8_t {
  kStepBegin,     // n = step index
  kQueryBegin,    // n = number of query terms
  kTermBegin,     // term; a = f_ins, b = f_add, n = total pages
  kPhase,         // term; phase = transition label ("ins->add", ...)
  kSmax,          // term; a = smax before, b = smax after (page granularity)
  kFetch,         // term, page_no; hit
  kEvict,         // term, page_no; a = max_weight, b = replacement value,
                  //   n = victim age in fetches
  kAccumulators,  // n = accumulator-set size (after a term completes)
  kTermSkip,      // term; a = fmax, b = f_add (skipped without any read)
  kTermEnd,       // term; a = smax after, n = postings processed
  kQueryEnd,      // a = final smax, n = accumulator-set size
  kRetry,         // term, page_no; n = attempts made, hit = recovered
  kBreaker,       // term, page_no; phase = breaker note ("rejected", ...)
  kPageLost,      // term, page_no; a = forfeited score bound
};

const char* TraceEventKindName(TraceEventKind kind);

/// One timeline entry. Flat POD on purpose: recording must not allocate
/// per event beyond vector growth. Field meaning per kind is documented
/// on TraceEventKind; unused fields are zero.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kQueryBegin;
  bool hit = false;
  uint32_t step = 0;  // refinement-step index the event belongs to
  TermId term = 0;
  uint32_t page_no = 0;
  double a = 0.0;
  double b = 0.0;
  uint64_t n = 0;
  /// Static-storage string (phase transitions); never owned.
  const char* phase = nullptr;
};

class QueryTracer {
 public:
  QueryTracer() = default;
  QueryTracer(const QueryTracer&) = delete;
  QueryTracer& operator=(const QueryTracer&) = delete;

  // --- Recording (hot path; callers guard with `if (tracer)`) ---

  /// Marks the start of refinement step `step`; subsequent events are
  /// tagged with it.
  void BeginStep(uint32_t step);
  void BeginQuery(uint64_t num_terms);
  void EndQuery(double smax, uint64_t accumulators);
  void BeginTerm(TermId term, uint32_t total_pages, double f_ins,
                 double f_add);
  void EndTerm(TermId term, double smax_after, uint64_t postings);
  void SkipTerm(TermId term, double fmax, double f_add);
  void Phase(TermId term, const char* transition);
  void Smax(TermId term, double before, double after);
  void Fetch(TermId term, uint32_t page_no, bool hit);
  void Evict(TermId term, uint32_t page_no, double max_weight, double value,
             uint64_t age_fetches);
  void Accumulators(uint64_t size);
  /// A page read took `attempts` tries; `recovered` = it succeeded in
  /// the end.
  void Retry(TermId term, uint32_t page_no, uint64_t attempts,
             bool recovered);
  /// Circuit-breaker interaction on this page's device (`note` is a
  /// static string, e.g. "rejected").
  void Breaker(TermId term, uint32_t page_no, const char* note);
  /// A page was abandoned after retries; `bound` is the maximum score
  /// contribution its postings could have made (quality-bound math).
  void PageLost(TermId term, uint32_t page_no, double bound);

  // --- Reading ---

  const std::vector<TraceEvent>& events() const { return events_; }
  uint32_t current_step() const { return step_; }
  size_t CountKind(TraceEventKind kind) const;

  /// Smax after each term processed within `step`, in processing order
  /// (the per-step s_max trajectory of the paper's Figure 4).
  std::vector<double> SmaxTrajectory(uint32_t step) const;

  void Clear();

  /// {"events":[{...},...]} — one object per event, kind-specific keys.
  std::string ToJson() const;

  /// Human-readable timeline, one event per line.
  std::string DumpText() const;

 private:
  void Push(TraceEvent event);

  std::vector<TraceEvent> events_;
  uint32_t step_ = 0;
};

}  // namespace irbuf::obs

#endif  // IRBUF_OBS_QUERY_TRACER_H_
