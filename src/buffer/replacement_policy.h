// The replacement-policy strategy interface. The buffer manager owns the
// frames; policies see frame ids plus read-only frame metadata through
// FrameDirectory and decide victims. RAP additionally receives the current
// query context.

#ifndef IRBUF_BUFFER_REPLACEMENT_POLICY_H_
#define IRBUF_BUFFER_REPLACEMENT_POLICY_H_

#include <cstdint>
#include <limits>

#include "buffer/query_context.h"
#include "storage/types.h"

namespace irbuf::buffer {

using FrameId = uint32_t;
inline constexpr FrameId kInvalidFrame =
    std::numeric_limits<FrameId>::max();

/// Read-only metadata of one buffer frame.
struct FrameMeta {
  PageId page;
  /// The page's stored max_d w_{d,t} (RAP's data-side value input).
  double max_weight = 0.0;
  bool occupied = false;
};

/// Read-only view over the buffer pool's frame table.
class FrameDirectory {
 public:
  virtual ~FrameDirectory() = default;
  virtual const FrameMeta& Meta(FrameId frame) const = 0;
  virtual size_t capacity() const = 0;
};

/// Strategy deciding which resident page to evict.
///
/// Lifecycle: Attach() once, then any interleaving of OnInsert/OnHit and
/// ChooseVictim/OnEvict. The buffer manager calls ChooseVictim only when
/// the pool is full, then OnEvict on the chosen frame *before* clearing
/// its metadata, so policies may still inspect Meta(victim) in OnEvict.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual const char* name() const = 0;

  /// Binds the policy to a pool. Called once before any other method.
  virtual void Attach(const FrameDirectory* directory) {
    directory_ = directory;
  }

  /// A page was just placed in `frame` (after a miss).
  virtual void OnInsert(FrameId frame) = 0;

  /// The page in `frame` was referenced again (a hit).
  virtual void OnHit(FrameId frame) = 0;

  /// The page in `frame` is being evicted.
  virtual void OnEvict(FrameId frame) = 0;

  /// Picks the frame to evict. The pool is full when this is called.
  virtual FrameId ChooseVictim() = 0;

  /// New query starting: ranking-aware policies may use its weights.
  /// Default: ignored.
  virtual void SetQueryContext(const QueryContext* context) {
    (void)context;
  }

  /// Drops all internal state (buffer flush).
  virtual void Reset() = 0;

 protected:
  const FrameDirectory* directory_ = nullptr;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_REPLACEMENT_POLICY_H_
