// The buffer subsystem's runtime contracts, shared by the
// single-threaded BufferManager and the concurrent serving pool. Each
// helper guards one invariant that the thread-safety annotations and
// the lock-ordering table in DESIGN.md document statically; the death
// tests in tests/buffer/contracts_test.cc prove every check fires.

#ifndef IRBUF_BUFFER_CONTRACTS_H_
#define IRBUF_BUFFER_CONTRACTS_H_

#include <cstdint>

#include "util/dcheck.h"

namespace irbuf::buffer::contracts {

/// A pin is being released: the frame must currently hold at least one
/// pin, or the count would wrap negative and the frame could be evicted
/// while a reader still holds its page.
inline void CheckPinRelease(uint32_t pins_before_release) {
  IRBUF_DCHECK(pins_before_release > 0,
               "pin released on a frame with no outstanding pins");
}

/// A victim frame has been selected for eviction: it must be occupied
/// (evicting an empty frame corrupts the free list) and unpinned
/// (evicting a pinned frame dangles every outstanding PinnedPage).
inline void CheckVictimEvictable(bool occupied, uint32_t pins) {
  IRBUF_DCHECK(occupied, "eviction selected an unoccupied frame");
  IRBUF_DCHECK(pins == 0, "eviction selected a pinned frame");
}

/// Pool counters at a quiescent point: every fetch is exactly one hit
/// or one miss (and misses equal disk reads), so the totals must
/// conserve.
inline void CheckStatsConservation(uint64_t fetches, uint64_t hits,
                                   uint64_t misses) {
  IRBUF_DCHECK(fetches == hits + misses,
               "buffer stats conservation violated: fetches != hits + misses");
}

/// Device-read conservation at a quiescent point: every successful read
/// the pool issued to the device was counted exactly once, either as a
/// demand miss or as a readahead (prefetch) read. Miss coalescing makes
/// this exact — a second concurrent request for an in-flight page joins
/// the load instead of issuing a duplicate read — so a pool that reads
/// the device without accounting (the duplicate-read bug class) trips
/// this, not just the soft fetches==hits+misses identity.
inline void CheckDiskReadConservation(uint64_t misses,
                                      uint64_t prefetch_reads,
                                      uint64_t device_reads) {
  IRBUF_DCHECK(misses + prefetch_reads == device_reads,
               "device-read conservation violated: misses + prefetch reads "
               "!= device reads issued");
}

}  // namespace irbuf::buffer::contracts

#endif  // IRBUF_BUFFER_CONTRACTS_H_
