// The buffer-pool abstraction shared by the single-threaded simulator
// pool (BufferManager) and the concurrent serving pool
// (serve::ConcurrentBufferPool): evaluators fetch pages through a
// pin/unpin protocol, so a fetched page cannot be evicted while its
// postings are being read.
//
// The pin protocol. FetchPinned returns a PinnedPage RAII guard; while
// the guard is alive the frame holding the page is pinned and will never
// be chosen as an eviction victim. The guard also records whether the
// fetch was a buffer hit or went to disk, so callers can attribute I/O
// per query without reading (racy, pool-global) stats deltas. Evaluators
// hold at most one pin at a time — page N's guard is released before
// page N+1 is fetched — so a pool with capacity >= the number of
// concurrent readers can always find a victim.

#ifndef IRBUF_BUFFER_BUFFER_POOL_H_
#define IRBUF_BUFFER_BUFFER_POOL_H_

#include <cstdint>
#include <span>
#include <utility>

#include "buffer/query_context.h"
#include "util/attributes.h"
#include "storage/page.h"
#include "storage/types.h"
#include "util/status.h"

namespace irbuf::buffer {

/// Pool-level accounting. `misses` equals pages read from disk.
struct BufferStats {
  uint64_t fetches = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    return fetches == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(fetches);
  }
};

class BufferPool;

/// An ordered page-access plan: the exact sequence of pages the caller
/// expects to fetch next, in fetch order, clipped to the pages it can
/// actually touch (an evaluator clips at its EvalControl page budget and
/// — on frequency-sorted lists — at the conversion table's
/// PagesToProcess bound, the pages its f_add threshold proves the scan
/// will never reach). A plan is a pure hint: pools that honor it warm
/// frames ahead of the demand fetches, pools that don't ignore it, and
/// either way every page an evaluator touches still arrives through
/// FetchPinned — rankings cannot depend on the plan.
using PageAccessPlan = std::span<const PageId>;

/// RAII pin on one buffer-resident page. While alive, the page cannot be
/// evicted; destruction (or Release) unpins it. Move-only.
class PinnedPage {
 public:
  PinnedPage() = default;
  PinnedPage(BufferPool* pool, const storage::Page* page, uint32_t frame,
             bool was_miss)
      : pool_(pool), page_(page), frame_(frame), was_miss_(was_miss) {}

  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;

  PinnedPage(PinnedPage&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        page_(std::exchange(other.page_, nullptr)),
        frame_(other.frame_),
        was_miss_(other.was_miss_) {}

  PinnedPage& operator=(PinnedPage&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = std::exchange(other.pool_, nullptr);
      page_ = std::exchange(other.page_, nullptr);
      frame_ = other.frame_;
      was_miss_ = other.was_miss_;
    }
    return *this;
  }

  ~PinnedPage() { Release(); }

  // lifetimebound: the pointer dies with the pin (see util/attributes.h).
  const storage::Page* get() const IRBUF_LIFETIME_BOUND { return page_; }
  const storage::Page& operator*() const IRBUF_LIFETIME_BOUND {
    return *page_;
  }
  const storage::Page* operator->() const IRBUF_LIFETIME_BOUND {
    return page_;
  }
  explicit operator bool() const { return page_ != nullptr; }

  /// True when this fetch read the page from disk (a buffer miss); false
  /// on a buffer hit. Per-fetch attribution stays correct when many
  /// queries share the pool concurrently.
  bool was_miss() const { return was_miss_; }

  /// The frame holding the page (stable while the pin is held).
  uint32_t frame() const { return frame_; }

  /// Unpins early; the guard becomes empty.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  const storage::Page* page_ = nullptr;
  uint32_t frame_ = 0;
  bool was_miss_ = false;
};

/// What query evaluation needs from a buffer pool. Implemented by the
/// single-threaded BufferManager and by the thread-safe serving pool;
/// evaluators are written against this interface only.
class BufferPool {
 public:
  virtual ~BufferPool() = default;

  /// Returns the requested page pinned, reading it from disk on a miss
  /// (evicting an unpinned victim if the pool is full). Fails with
  /// ResourceExhausted when every frame is pinned.
  virtual Result<PinnedPage> FetchPinned(PageId id) = 0;

  /// b_t: how many pages of `term`'s inverted list are buffer-resident.
  /// In a concurrent pool this is a racy-but-monotonic estimate — exactly
  /// what BAF's disk-read estimate d_t = max(p_t - b_t, 0) needs.
  virtual uint32_t ResidentPages(TermId term) const = 0;

  /// Installs the current query's term weights for ranking-aware
  /// policies. A single-user pool adopts them directly; the serving
  /// pool does too, unless a serve::SharedQueryContext is attached —
  /// then the replacement context is the merged weights of every
  /// in-flight query and this call becomes a no-op.
  virtual void SetQueryContext(QueryContext context) = 0;

  /// Point-in-time copy of the pool counters (taken atomically enough
  /// for reporting; exact when the pool is quiesced).
  virtual BufferStats StatsSnapshot() const = 0;

  /// Readahead slots this pool services (0 = readahead off, the
  /// default). Evaluators consult this before building a PageAccessPlan
  /// so a pool without readahead never pays the plan's construction.
  virtual size_t PrefetchDepth() const { return 0; }

  /// Hints the upcoming page-access sequence (see PageAccessPlan).
  /// Entries already resident or already in flight are skipped by
  /// implementations; a failed or dropped readahead read is silent —
  /// the demand fetch retries it and degrades exactly as it would have
  /// without the hint. Default: no-op (the single-threaded
  /// BufferManager and test pools ignore plans).
  virtual void Prefetch(PageAccessPlan plan) { (void)plan; }

 private:
  friend class PinnedPage;

  /// Drops one pin from `frame`. Called only by PinnedPage.
  virtual void Unpin(uint32_t frame) = 0;
};

inline void PinnedPage::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    page_ = nullptr;
  }
}

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_BUFFER_POOL_H_
