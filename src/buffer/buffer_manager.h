// The buffer manager: a fixed pool of page frames over the simulated disk,
// with a pluggable replacement policy and the per-term residency counters
// (b_t) that the BAF evaluator queries (Section 3.2.2 — "an array of
// counters, updated whenever a page is moved in or out of buffers").

#ifndef IRBUF_BUFFER_BUFFER_MANAGER_H_
#define IRBUF_BUFFER_BUFFER_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/replacement_policy.h"
#include "fault/resilient.h"
#include "obs/metrics.h"
#include "obs/query_tracer.h"
#include "storage/page.h"
#include "storage/simulated_disk.h"
#include "util/status.h"

namespace irbuf::buffer {

/// Victim metadata handed to eviction observers: which page left the
/// pool, its stored max weight, its ranking-aware replacement value
/// (max_weight * w_{q,t} under the effective query context, 0 when the
/// term is not in the current query) and its age in fetches since it was
/// placed in the frame.
struct EvictionEvent {
  PageId page;
  double max_weight = 0.0;
  double value = 0.0;
  uint64_t age_fetches = 0;
};

/// A fixed-capacity buffer pool. Single-threaded (the simulator's
/// setting); serve::ConcurrentBufferPool is the thread-safe counterpart.
class BufferManager final : public FrameDirectory, public BufferPool {
 public:
  /// `capacity` is in pages (>= 1). The disk must outlive the manager.
  BufferManager(const storage::SimulatedDisk* disk, size_t capacity,
                std::unique_ptr<ReplacementPolicy> policy);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Returns the requested page WITHOUT pinning it, reading it from disk
  /// on a miss (evicting a victim if the pool is full).
  ///
  /// LIFETIME HAZARD: the returned pointer is only valid until the next
  /// FetchPage/FetchPinned or Flush call — the next fetch may evict this
  /// page and recycle its frame in place. Callers that hold a page across
  /// another fetch must use FetchPinned instead; the evaluators in core/
  /// do exactly that.
  Result<const storage::Page*> FetchPage(PageId id);

  /// BufferPool: like FetchPage, but the page stays pinned (ineligible
  /// for eviction) until the returned guard is released. Pinned frames
  /// are skipped during victim selection: when the policy's choice is
  /// pinned, the oldest-inserted unpinned frame is evicted instead, and
  /// when every frame is pinned the fetch fails with ResourceExhausted.
  Result<PinnedPage> FetchPinned(PageId id) override;

  /// True when the page is buffer-resident (no side effects).
  bool Contains(PageId id) const {
    return page_table_.count(id.Pack()) > 0;
  }

  /// b_t: how many pages of `term`'s inverted list are in buffers. O(1).
  uint32_t ResidentPages(TermId term) const override {
    return term < term_resident_.size() ? term_resident_[term] : 0;
  }

  /// Installs the current query's term weights for ranking-aware policies.
  void SetQueryContext(QueryContext context) override;

  /// Multi-user extension (Section 3.3): weights of the *other* queries
  /// currently sharing this pool. Merged (max per term) into every query
  /// context installed via SetQueryContext, so RAP does not treat pages
  /// another active user still needs as worthless. Pass an empty context
  /// to clear.
  void SetSharedContext(QueryContext shared);

  /// Drops every page (the paper flushes buffers between refinement
  /// sequences and between independent queries). All pins must have been
  /// released first; outstanding PinnedPage guards are invalidated (their
  /// pins are discarded, their pointers dangle).
  void Flush();

  const BufferStats& stats() const { return stats_; }
  BufferStats StatsSnapshot() const override { return stats_; }

  /// Pins currently held on `id`'s frame (0 when not resident).
  uint32_t PinCount(PageId id) const;

  /// Zeroes the pool's own counters only. The underlying SimulatedDisk
  /// keeps its fully independent DiskStats: neither this call nor
  /// Flush() touches disk counters — reset those separately via
  /// SimulatedDisk::ResetStats() when a bench wants both at zero.
  void ResetStats() { stats_ = BufferStats{}; }

  /// Installs (or clears, with nullptr) the per-query tracer: every
  /// fetch is recorded tagged hit/miss and every eviction is recorded
  /// with victim metadata. The tracer must outlive its installation.
  void SetTracer(obs::QueryTracer* tracer) { tracer_ = tracer; }

  /// Optional eviction observer (replacement-policy studies hook in
  /// here without subclassing a policy). Runs after the policy's
  /// OnEvict, before the frame is reused. Pass {} to clear.
  void SetEvictionCallback(std::function<void(const EvictionEvent&)> cb) {
    eviction_cb_ = std::move(cb);
  }

  /// Resolves metric handles in `registry` (buffer.fetches, buffer.hits,
  /// buffer.misses, buffer.evictions, buffer.eviction_victim_age) once;
  /// the fetch path then only dereferences them. Pass nullptr to unbind.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Installs retry-with-backoff (and optionally a circuit breaker) in
  /// front of every miss-path disk read. With `options.enabled` false
  /// (the default state of a fresh manager) misses call the disk
  /// directly, byte-for-byte the pre-fault behaviour. Call before the
  /// first fetch; reconfiguring mid-run resets the breaker state.
  void SetResilience(const fault::ResilienceOptions& options);

  /// Null until SetResilience installs one.
  const fault::ResilientReader* resilience() const {
    return resilient_.get();
  }

  const char* policy_name() const { return policy_->name(); }

  /// All resident page ids, unordered (test/introspection helper).
  std::vector<PageId> ResidentPageIds() const;

  // FrameDirectory:
  const FrameMeta& Meta(FrameId frame) const override {
    return frames_[frame].meta;
  }
  size_t capacity() const override { return frames_.size(); }

 private:
  struct Frame {
    storage::Page page;
    FrameMeta meta;
    /// Value of fetch_tick_ when the current page was inserted (victim
    /// age = fetch_tick_ - insert_tick).
    uint64_t insert_tick = 0;
    /// Outstanding FetchPinned guards on this frame; > 0 makes the frame
    /// ineligible for eviction.
    uint32_t pins = 0;
  };

  // BufferPool:
  void Unpin(uint32_t frame) override;

  /// Shared fetch path; `*was_miss` reports the hit/miss outcome and
  /// `*frame_out` the frame the page landed in.
  Result<const storage::Page*> FetchInternal(PageId id, bool* was_miss,
                                             FrameId* frame_out);

  /// The frame to evict when the pool is full: the policy's choice, or —
  /// only when that choice is pinned — the oldest-inserted unpinned
  /// frame. kInvalidFrame when every frame is pinned.
  FrameId PickVictim();

  /// Pre-resolved registry handles (all null when unbound).
  struct MetricHandles {
    obs::Counter* fetches = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Histogram* victim_age = nullptr;
  };

  const storage::SimulatedDisk* disk_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::vector<Frame> frames_;
  std::vector<FrameId> free_frames_;
  std::unordered_map<uint64_t, FrameId> page_table_;
  std::vector<uint32_t> term_resident_;
  QueryContext query_context_;
  QueryContext shared_context_;
  BufferStats stats_;
  uint64_t fetch_tick_ = 0;
  obs::QueryTracer* tracer_ = nullptr;
  std::function<void(const EvictionEvent&)> eviction_cb_;
  MetricHandles metrics_;
  /// Miss-path retry/breaker wrapper; null = plain reads.
  std::unique_ptr<fault::ResilientReader> resilient_;
  /// Remembered so SetResilience after BindMetrics still wires the
  /// fault.* instruments (and vice versa).
  obs::MetricsRegistry* registry_ = nullptr;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_BUFFER_MANAGER_H_
