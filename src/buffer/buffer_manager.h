// The buffer manager: a fixed pool of page frames over the simulated disk,
// with a pluggable replacement policy and the per-term residency counters
// (b_t) that the BAF evaluator queries (Section 3.2.2 — "an array of
// counters, updated whenever a page is moved in or out of buffers").

#ifndef IRBUF_BUFFER_BUFFER_MANAGER_H_
#define IRBUF_BUFFER_BUFFER_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "buffer/replacement_policy.h"
#include "storage/page.h"
#include "storage/simulated_disk.h"
#include "util/status.h"

namespace irbuf::buffer {

/// Pool-level accounting. `misses` equals pages read from disk.
struct BufferStats {
  uint64_t fetches = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    return fetches == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(fetches);
  }
};

/// A fixed-capacity buffer pool.
class BufferManager final : public FrameDirectory {
 public:
  /// `capacity` is in pages (>= 1). The disk must outlive the manager.
  BufferManager(const storage::SimulatedDisk* disk, size_t capacity,
                std::unique_ptr<ReplacementPolicy> policy);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Returns the requested page, reading it from disk on a miss (evicting
  /// a victim if the pool is full). The returned pointer stays valid until
  /// the next FetchPage or Flush call.
  Result<const storage::Page*> FetchPage(PageId id);

  /// True when the page is buffer-resident (no side effects).
  bool Contains(PageId id) const {
    return page_table_.count(id.Pack()) > 0;
  }

  /// b_t: how many pages of `term`'s inverted list are in buffers. O(1).
  uint32_t ResidentPages(TermId term) const {
    return term < term_resident_.size() ? term_resident_[term] : 0;
  }

  /// Installs the current query's term weights for ranking-aware policies.
  void SetQueryContext(QueryContext context);

  /// Multi-user extension (Section 3.3): weights of the *other* queries
  /// currently sharing this pool. Merged (max per term) into every query
  /// context installed via SetQueryContext, so RAP does not treat pages
  /// another active user still needs as worthless. Pass an empty context
  /// to clear.
  void SetSharedContext(QueryContext shared);

  /// Drops every page (the paper flushes buffers between refinement
  /// sequences and between independent queries).
  void Flush();

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats{}; }

  const char* policy_name() const { return policy_->name(); }

  /// All resident page ids, unordered (test/introspection helper).
  std::vector<PageId> ResidentPageIds() const;

  // FrameDirectory:
  const FrameMeta& Meta(FrameId frame) const override {
    return frames_[frame].meta;
  }
  size_t capacity() const override { return frames_.size(); }

 private:
  struct Frame {
    storage::Page page;
    FrameMeta meta;
  };

  const storage::SimulatedDisk* disk_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::vector<Frame> frames_;
  std::vector<FrameId> free_frames_;
  std::unordered_map<uint64_t, FrameId> page_table_;
  std::vector<uint32_t> term_resident_;
  QueryContext query_context_;
  QueryContext shared_context_;
  BufferStats stats_;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_BUFFER_MANAGER_H_
