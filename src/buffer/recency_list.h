// Shared recency-ordered frame list used by the LRU and MRU policies:
// a doubly-linked list over frame ids with O(1) move-to-back.

#ifndef IRBUF_BUFFER_RECENCY_LIST_H_
#define IRBUF_BUFFER_RECENCY_LIST_H_

#include <list>
#include <vector>

#include "buffer/replacement_policy.h"

namespace irbuf::buffer {

/// Frames ordered from least recently used (front) to most recently used
/// (back).
class RecencyList {
 public:
  void EnsureCapacity(size_t frames) {
    if (iters_.size() < frames) iters_.resize(frames, order_.end());
  }

  void Insert(FrameId frame) {
    EnsureCapacity(frame + 1);
    iters_[frame] = order_.insert(order_.end(), frame);
  }

  void Touch(FrameId frame) {
    order_.splice(order_.end(), order_, iters_[frame]);
  }

  void Remove(FrameId frame) {
    order_.erase(iters_[frame]);
    iters_[frame] = order_.end();
  }

  FrameId LeastRecent() const { return order_.front(); }
  FrameId MostRecent() const { return order_.back(); }
  bool empty() const { return order_.empty(); }

  void Clear() {
    order_.clear();
    iters_.assign(iters_.size(), order_.end());
  }

 private:
  std::list<FrameId> order_;
  std::vector<std::list<FrameId>::iterator> iters_;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_RECENCY_LIST_H_
