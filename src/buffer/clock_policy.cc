#include "buffer/clock_policy.h"

namespace irbuf::buffer {

void ClockPolicy::OnInsert(FrameId frame) {
  if (resident_.size() <= frame) {
    resident_.resize(frame + 1, false);
    referenced_.resize(frame + 1, false);
  }
  resident_[frame] = true;
  referenced_[frame] = true;
}

void ClockPolicy::OnHit(FrameId frame) { referenced_[frame] = true; }

void ClockPolicy::OnEvict(FrameId frame) { resident_[frame] = false; }

FrameId ClockPolicy::ChooseVictim() {
  const size_t n = resident_.size();
  if (n == 0) return kInvalidFrame;
  // Sweep at most two full revolutions: the first clears reference bits,
  // the second necessarily finds a victim.
  for (size_t step = 0; step < 2 * n; ++step) {
    FrameId f = hand_;
    hand_ = static_cast<FrameId>((hand_ + 1) % n);
    if (!resident_[f]) continue;
    if (referenced_[f]) {
      referenced_[f] = false;
    } else {
      return f;
    }
  }
  return kInvalidFrame;
}

void ClockPolicy::Reset() {
  resident_.assign(resident_.size(), false);
  referenced_.assign(referenced_.size(), false);
  hand_ = 0;
}

}  // namespace irbuf::buffer
