// The paper's Ranking-Aware Policy (RAP), Section 3.3: the replacement
// value of a page is
//
//     value(page) = (max_d w_{d,t} on page) * w_{q,t}        (Equation 6)
//
// where w_{q,t} comes from the query currently being processed. The page
// with the lowest value is the victim. Consequences:
//  * first pages of inverted lists (highest stored weights) are retained;
//  * pages of terms dropped during refinement have w_{q,t} = 0 and are
//    evicted first, tail of the list before the head.
//
// Victim search is a linear scan over resident frames. The paper notes a
// fully sorted frame queue is unnecessary as long as victims come from
// among the lowest-valued pages; at the pool sizes of the study an exact
// scan is cheap and keeps the policy deterministic.

#ifndef IRBUF_BUFFER_RAP_POLICY_H_
#define IRBUF_BUFFER_RAP_POLICY_H_

#include <vector>

#include "buffer/replacement_policy.h"

namespace irbuf::buffer {

class RapPolicy final : public ReplacementPolicy {
 public:
  const char* name() const override { return "RAP"; }

  void OnInsert(FrameId frame) override;
  void OnHit(FrameId /*frame*/) override {}
  void OnEvict(FrameId frame) override;
  FrameId ChooseVictim() override;
  void SetQueryContext(const QueryContext* context) override {
    context_ = context;
  }
  void Reset() override;

  /// The replacement value the policy would assign to `frame` right now
  /// (exposed for tests and the ablation bench).
  double ValueOf(FrameId frame) const;

 private:
  std::vector<bool> resident_;
  const QueryContext* context_ = nullptr;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_RAP_POLICY_H_
