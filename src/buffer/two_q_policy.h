// 2Q replacement (Johnson & Shasha, VLDB 1994), the "full version":
// new pages enter a FIFO queue A1in; on eviction from A1in their ids are
// remembered in a ghost queue A1out; a miss on a page remembered in A1out
// admits it to the main LRU queue Am. Hits inside A1in do not promote.
//
// Implemented for the paper's footnote-7 claim that 2Q fares no better
// than LRU on query-refinement access patterns.

#ifndef IRBUF_BUFFER_TWO_Q_POLICY_H_
#define IRBUF_BUFFER_TWO_Q_POLICY_H_

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "buffer/recency_list.h"
#include "buffer/replacement_policy.h"

namespace irbuf::buffer {

class TwoQPolicy final : public ReplacementPolicy {
 public:
  /// Tuning knobs as fractions of the pool size; defaults are the 2Q
  /// paper's recommendation (Kin = 25%, Kout = 50%).
  explicit TwoQPolicy(double kin_fraction = 0.25,
                      double kout_fraction = 0.50)
      : kin_fraction_(kin_fraction), kout_fraction_(kout_fraction) {}

  const char* name() const override { return "2Q"; }
  void OnInsert(FrameId frame) override;
  void OnHit(FrameId frame) override;
  void OnEvict(FrameId frame) override;
  FrameId ChooseVictim() override;
  void Reset() override;

 private:
  enum class Queue : uint8_t { kNone, kA1In, kAm };

  size_t KinPages() const;
  size_t KoutPages() const;
  void RememberGhost(uint64_t packed_page);

  double kin_fraction_;
  double kout_fraction_;
  std::deque<FrameId> a1in_;          // FIFO of resident frames.
  RecencyList am_;                    // LRU of resident frames.
  std::vector<Queue> frame_queue_;    // Which queue each frame is on.
  std::deque<uint64_t> a1out_fifo_;   // Ghost page ids, FIFO.
  std::unordered_set<uint64_t> a1out_set_;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_TWO_Q_POLICY_H_
