// Creation of replacement policies by enum or name, for the experiment
// harness and examples.

#ifndef IRBUF_BUFFER_POLICY_FACTORY_H_
#define IRBUF_BUFFER_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "buffer/replacement_policy.h"
#include "util/status.h"

namespace irbuf::buffer {

/// The replacement policies irbuf ships.
enum class PolicyKind {
  kLru,
  kMru,
  kRap,
  kLruK,
  kTwoQ,
  kClock,
  kFifo,
};

/// Instantiates a fresh policy of the given kind.
std::unique_ptr<ReplacementPolicy> MakePolicy(PolicyKind kind);

/// Parses "LRU", "MRU", "RAP", "LRU-2", "2Q", "CLOCK", "FIFO"
/// (case-insensitive).
Result<PolicyKind> ParsePolicyKind(const std::string& name);

/// Canonical display name of a kind.
const char* PolicyKindName(PolicyKind kind);

/// All kinds, in display order (benches iterate this).
std::vector<PolicyKind> AllPolicyKinds();

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_POLICY_FACTORY_H_
