#include "buffer/mru_policy.h"

// Header-only; anchors the translation unit.
