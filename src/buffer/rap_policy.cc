#include "buffer/rap_policy.h"

namespace irbuf::buffer {

void RapPolicy::OnInsert(FrameId frame) {
  if (resident_.size() <= frame) resident_.resize(frame + 1, false);
  resident_[frame] = true;
}

void RapPolicy::OnEvict(FrameId frame) { resident_[frame] = false; }

double RapPolicy::ValueOf(FrameId frame) const {
  const FrameMeta& meta = directory_->Meta(frame);
  double wq = context_ == nullptr ? 0.0 : context_->WeightOf(meta.page.term);
  return meta.max_weight * wq;
}

FrameId RapPolicy::ChooseVictim() {
  FrameId victim = kInvalidFrame;
  double victim_value = 0.0;
  PageId victim_page{};
  for (FrameId f = 0; f < resident_.size(); ++f) {
    if (!resident_[f]) continue;
    const FrameMeta& meta = directory_->Meta(f);
    double value = ValueOf(f);
    bool better;
    if (victim == kInvalidFrame) {
      better = true;
    } else if (value != victim_value) {
      better = value < victim_value;
    } else {
      // Equal values (notably 0 for dropped terms): evict the tail of the
      // list before the head, then break ties deterministically by term.
      if (meta.page.term == victim_page.term) {
        better = meta.page.page_no > victim_page.page_no;
      } else {
        better = meta.page.page_no > victim_page.page_no ||
                 (meta.page.page_no == victim_page.page_no &&
                  meta.page.term > victim_page.term);
      }
    }
    if (better) {
      victim = f;
      victim_value = value;
      victim_page = meta.page;
    }
  }
  return victim;
}

void RapPolicy::Reset() { resident_.assign(resident_.size(), false); }

}  // namespace irbuf::buffer
