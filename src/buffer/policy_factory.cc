#include "buffer/policy_factory.h"

#include "buffer/clock_policy.h"
#include "buffer/fifo_policy.h"
#include "buffer/lru_k_policy.h"
#include "buffer/lru_policy.h"
#include "buffer/mru_policy.h"
#include "buffer/rap_policy.h"
#include "buffer/two_q_policy.h"
#include "util/str.h"

namespace irbuf::buffer {

std::unique_ptr<ReplacementPolicy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>();
    case PolicyKind::kMru:
      return std::make_unique<MruPolicy>();
    case PolicyKind::kRap:
      return std::make_unique<RapPolicy>();
    case PolicyKind::kLruK:
      return std::make_unique<LruKPolicy>(2);
    case PolicyKind::kTwoQ:
      return std::make_unique<TwoQPolicy>();
    case PolicyKind::kClock:
      return std::make_unique<ClockPolicy>();
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>();
  }
  return nullptr;
}

Result<PolicyKind> ParsePolicyKind(const std::string& name) {
  std::string lower = ToLowerAscii(name);
  if (lower == "lru") return PolicyKind::kLru;
  if (lower == "mru") return PolicyKind::kMru;
  if (lower == "rap") return PolicyKind::kRap;
  if (lower == "lru-2" || lower == "lru2" || lower == "lru-k") {
    return PolicyKind::kLruK;
  }
  if (lower == "2q") return PolicyKind::kTwoQ;
  if (lower == "clock") return PolicyKind::kClock;
  if (lower == "fifo") return PolicyKind::kFifo;
  return Status::InvalidArgument(
      StrFormat("unknown replacement policy '%s'", name.c_str()));
}

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru:
      return "LRU";
    case PolicyKind::kMru:
      return "MRU";
    case PolicyKind::kRap:
      return "RAP";
    case PolicyKind::kLruK:
      return "LRU-2";
    case PolicyKind::kTwoQ:
      return "2Q";
    case PolicyKind::kClock:
      return "CLOCK";
    case PolicyKind::kFifo:
      return "FIFO";
  }
  return "?";
}

std::vector<PolicyKind> AllPolicyKinds() {
  return {PolicyKind::kLru,  PolicyKind::kMru,   PolicyKind::kRap,
          PolicyKind::kLruK, PolicyKind::kTwoQ,  PolicyKind::kClock,
          PolicyKind::kFifo};
}

}  // namespace irbuf::buffer
