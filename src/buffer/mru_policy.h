// Most-Recently-Used replacement: the classic remedy for repeated
// sequential scans [CD85]. The paper shows it breaks down on ADD-DROP
// refinement workloads because pages of dropped terms are, by definition,
// never the most recently used and therefore never evicted (Section 5.3).

#ifndef IRBUF_BUFFER_MRU_POLICY_H_
#define IRBUF_BUFFER_MRU_POLICY_H_

#include "buffer/recency_list.h"
#include "buffer/replacement_policy.h"

namespace irbuf::buffer {

class MruPolicy final : public ReplacementPolicy {
 public:
  const char* name() const override { return "MRU"; }
  void OnInsert(FrameId frame) override { list_.Insert(frame); }
  void OnHit(FrameId frame) override { list_.Touch(frame); }
  void OnEvict(FrameId frame) override { list_.Remove(frame); }
  FrameId ChooseVictim() override { return list_.MostRecent(); }
  void Reset() override { list_.Clear(); }

 private:
  RecencyList list_;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_MRU_POLICY_H_
