#include "buffer/lru_k_policy.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "util/str.h"

namespace irbuf::buffer {

LruKPolicy::LruKPolicy(int k) : k_(k < 1 ? 1 : k) {
  name_ = StrFormat("LRU-%d", k_);
}

void LruKPolicy::Touch(PageId page) {
  History& h = history_[page.Pack()];
  h.refs.insert(h.refs.begin(), ++clock_);
  if (h.refs.size() > static_cast<size_t>(k_)) h.refs.resize(k_);
  TrimHistory();
}

void LruKPolicy::TrimHistory() {
  if (directory_ == nullptr) return;
  const size_t limit =
      std::max<size_t>(64, kHistoryFactor * directory_->capacity());
  if (history_.size() <= limit) return;
  // Median last-reference clock over a snapshot; drop the older half.
  std::vector<uint64_t> last_refs;
  last_refs.reserve(history_.size());
  for (const auto& [page, h] : history_) {
    last_refs.push_back(h.refs.empty() ? 0 : h.refs.front());
  }
  auto mid = last_refs.begin() + last_refs.size() / 2;
  std::nth_element(last_refs.begin(), mid, last_refs.end());
  const uint64_t cutoff = *mid;
  // Resident pages are never dropped: their history backs ChooseVictim.
  std::unordered_set<uint64_t> resident_pages;
  for (FrameId f = 0; f < resident_.size(); ++f) {
    if (resident_[f]) resident_pages.insert(directory_->Meta(f).page.Pack());
  }
  for (auto it = history_.begin(); it != history_.end();) {
    uint64_t last = it->second.refs.empty() ? 0 : it->second.refs.front();
    if (last < cutoff && resident_pages.count(it->first) == 0) {
      it = history_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t LruKPolicy::KDistanceClock(const History& h) const {
  if (h.refs.size() < static_cast<size_t>(k_)) return 0;  // "infinite".
  return h.refs[k_ - 1];
}

void LruKPolicy::OnInsert(FrameId frame) {
  if (resident_.size() <= frame) resident_.resize(frame + 1, false);
  resident_[frame] = true;
  Touch(directory_->Meta(frame).page);
}

void LruKPolicy::OnHit(FrameId frame) {
  Touch(directory_->Meta(frame).page);
}

void LruKPolicy::OnEvict(FrameId frame) { resident_[frame] = false; }

FrameId LruKPolicy::ChooseVictim() {
  FrameId victim = kInvalidFrame;
  uint64_t victim_kdist = 0;
  uint64_t victim_last = 0;
  for (FrameId f = 0; f < resident_.size(); ++f) {
    if (!resident_[f]) continue;
    auto it = history_.find(directory_->Meta(f).page.Pack());
    const History& h = it->second;
    uint64_t kdist = KDistanceClock(h);
    uint64_t last = h.refs.empty() ? 0 : h.refs.front();
    bool better;
    if (victim == kInvalidFrame) {
      better = true;
    } else if (kdist != victim_kdist) {
      // Smaller K-th reference clock = farther in the past; 0 means fewer
      // than K references, which sorts before everything.
      better = kdist < victim_kdist;
    } else {
      better = last < victim_last;
    }
    if (better) {
      victim = f;
      victim_kdist = kdist;
      victim_last = last;
    }
  }
  return victim;
}

void LruKPolicy::Reset() {
  resident_.assign(resident_.size(), false);
  history_.clear();
  clock_ = 0;
}

}  // namespace irbuf::buffer
