#include "buffer/buffer_manager.h"

#include <algorithm>

#include "buffer/contracts.h"
#include "util/str.h"

namespace irbuf::buffer {

BufferManager::BufferManager(const storage::SimulatedDisk* disk,
                             size_t capacity,
                             std::unique_ptr<ReplacementPolicy> policy)
    : disk_(disk), policy_(std::move(policy)) {
  if (capacity == 0) capacity = 1;
  frames_.resize(capacity);
  free_frames_.reserve(capacity);
  // Hand out low frame ids first (push high ids so they pop last).
  for (size_t i = capacity; i > 0; --i) {
    free_frames_.push_back(static_cast<FrameId>(i - 1));
  }
  term_resident_.assign(disk_->num_terms(), 0);
  policy_->Attach(this);
}

Result<const storage::Page*> BufferManager::FetchPage(PageId id) {
  bool was_miss = false;
  FrameId frame = kInvalidFrame;
  return FetchInternal(id, &was_miss, &frame);
}

Result<PinnedPage> BufferManager::FetchPinned(PageId id) {
  bool was_miss = false;
  FrameId frame = kInvalidFrame;
  Result<const storage::Page*> page = FetchInternal(id, &was_miss, &frame);
  if (!page.ok()) return page.status();
  ++frames_[frame].pins;
  return PinnedPage(this, page.value(), frame, was_miss);
}

void BufferManager::Unpin(uint32_t frame) {
  // Tolerates pins == 0 (no DCHECK): Flush() documents that it discards
  // outstanding pins, so a stale guard's release after a flush is a
  // legal no-op here. The concurrent pool has no Flush and checks
  // strictly.
  if (frame < frames_.size() && frames_[frame].pins > 0) {
    --frames_[frame].pins;
  }
}

uint32_t BufferManager::PinCount(PageId id) const {
  auto it = page_table_.find(id.Pack());
  return it == page_table_.end() ? 0 : frames_[it->second].pins;
}

FrameId BufferManager::PickVictim() {
  const FrameId chosen = policy_->ChooseVictim();
  if (chosen < frames_.size() && frames_[chosen].meta.occupied &&
      frames_[chosen].pins == 0) {
    return chosen;
  }
  if (chosen >= frames_.size() || !frames_[chosen].meta.occupied) {
    return kInvalidFrame;  // Policy bug; caller reports it.
  }
  // The policy's choice is pinned. Pins are short (one page per reader),
  // so fall back to the oldest-inserted unpinned frame; exact policy
  // order resumes once the pins drain.
  FrameId fallback = kInvalidFrame;
  for (FrameId f = 0; f < frames_.size(); ++f) {
    if (!frames_[f].meta.occupied || frames_[f].pins > 0) continue;
    if (fallback == kInvalidFrame ||
        frames_[f].insert_tick < frames_[fallback].insert_tick) {
      fallback = f;
    }
  }
  return fallback;
}

Result<const storage::Page*> BufferManager::FetchInternal(
    PageId id, bool* was_miss, FrameId* frame_out) {
  ++stats_.fetches;
  ++fetch_tick_;
  auto it = page_table_.find(id.Pack());
  if (it != page_table_.end()) {
    ++stats_.hits;
    *was_miss = false;
    *frame_out = it->second;
    if (metrics_.fetches != nullptr) {
      metrics_.fetches->Add(1);
      metrics_.hits->Add(1);
    }
    if (tracer_ != nullptr) tracer_->Fetch(id.term, id.page_no, true);
    policy_->OnHit(it->second);
    return static_cast<const storage::Page*>(&frames_[it->second].page);
  }

  ++stats_.misses;
  *was_miss = true;
  if (metrics_.fetches != nullptr) {
    metrics_.fetches->Add(1);
    metrics_.misses->Add(1);
  }
  if (tracer_ != nullptr) tracer_->Fetch(id.term, id.page_no, false);
  FrameId frame;
  if (!free_frames_.empty()) {
    frame = free_frames_.back();
    free_frames_.pop_back();
  } else {
    frame = PickVictim();
    if (frame == kInvalidFrame) {
      if (std::all_of(frames_.begin(), frames_.end(),
                      [](const Frame& f) { return f.pins > 0; })) {
        return Status::ResourceExhausted(StrFormat(
            "all %zu frames pinned; pool capacity must exceed the number "
            "of concurrently pinned pages",
            frames_.size()));
      }
      return Status::Internal(
          StrFormat("policy %s chose invalid victim frame", policy_->name()));
    }
    contracts::CheckVictimEvictable(frames_[frame].meta.occupied,
                                    frames_[frame].pins);
    // OnEvict runs while the victim's metadata is still readable.
    policy_->OnEvict(frame);
    const PageId victim_page = frames_[frame].meta.page;
    // Victim metadata is observed before the frame is recycled; the
    // replacement value is RAP's Equation 6 under the effective context.
    if (tracer_ != nullptr || eviction_cb_ || metrics_.victim_age != nullptr) {
      EvictionEvent ev;
      ev.page = victim_page;
      ev.max_weight = frames_[frame].meta.max_weight;
      ev.value = ev.max_weight * query_context_.WeightOf(victim_page.term);
      ev.age_fetches = fetch_tick_ - frames_[frame].insert_tick;
      if (tracer_ != nullptr) {
        tracer_->Evict(victim_page.term, victim_page.page_no,
                       ev.max_weight, ev.value, ev.age_fetches);
      }
      if (metrics_.victim_age != nullptr) {
        metrics_.victim_age->Observe(static_cast<double>(ev.age_fetches));
      }
      if (eviction_cb_) eviction_cb_(ev);
    }
    page_table_.erase(victim_page.Pack());
    if (victim_page.term < term_resident_.size()) {
      --term_resident_[victim_page.term];
    }
    frames_[frame].meta.occupied = false;
    ++stats_.evictions;
    if (metrics_.evictions != nullptr) metrics_.evictions->Add(1);
  }

  // The disk decodes straight into the frame's page: the frame caches
  // the decoded PostingBlock (hits hand evaluators the block with zero
  // decode work) and its buffers are recycled across evictions, so a
  // warmed pool's miss path performs no allocation either.
  Frame& f = frames_[frame];
  Status read_status;
  if (resilient_ != nullptr) {
    fault::ReadOutcome outcome;
    read_status = resilient_->Read(
        id, [&] { return disk_->ReadPage(id, &f.page); }, &outcome);
    if (tracer_ != nullptr) {
      if (outcome.rejected_by_breaker) {
        tracer_->Breaker(id.term, id.page_no, "rejected");
      } else if (outcome.attempts > 1) {
        tracer_->Retry(id.term, id.page_no, outcome.attempts,
                       read_status.ok());
      }
    }
  } else {
    read_status = disk_->ReadPage(id, &f.page);
  }
  if (!read_status.ok()) {
    // The frame was reserved (popped or evicted) before the read; give
    // it back so a lost page costs no pool capacity.
    free_frames_.push_back(frame);
    return read_status;
  }
  f.meta.page = id;
  f.meta.max_weight = f.page.max_weight;
  f.meta.occupied = true;
  f.insert_tick = fetch_tick_;
  page_table_.emplace(id.Pack(), frame);
  if (id.term < term_resident_.size()) ++term_resident_[id.term];
  policy_->OnInsert(frame);
  *frame_out = frame;
  contracts::CheckStatsConservation(stats_.fetches, stats_.hits,
                                    stats_.misses);
  return static_cast<const storage::Page*>(&f.page);
}

void BufferManager::SetResilience(const fault::ResilienceOptions& options) {
  resilient_ = std::make_unique<fault::ResilientReader>(options);
  if (registry_ != nullptr) resilient_->BindMetrics(registry_);
}

void BufferManager::BindMetrics(obs::MetricsRegistry* registry) {
  registry_ = registry;
  if (resilient_ != nullptr) resilient_->BindMetrics(registry);
  if (registry == nullptr) {
    metrics_ = MetricHandles{};
    return;
  }
  metrics_.fetches =
      registry->AddCounter("buffer.fetches", "pages requested of the pool");
  metrics_.hits = registry->AddCounter("buffer.hits", "buffer-resident hits");
  metrics_.misses =
      registry->AddCounter("buffer.misses", "fetches that went to disk");
  metrics_.evictions =
      registry->AddCounter("buffer.evictions", "pages pushed out of the pool");
  metrics_.victim_age = registry->AddHistogram(
      "buffer.eviction_victim_age",
      {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0},
      "eviction victim age in fetches since insertion");
}

void BufferManager::SetQueryContext(QueryContext context) {
  query_context_ = std::move(context);
  query_context_.MergeMax(shared_context_);
  policy_->SetQueryContext(&query_context_);
}

void BufferManager::SetSharedContext(QueryContext shared) {
  shared_context_ = std::move(shared);
  // Re-derive the effective context so the change takes effect before
  // the next SetQueryContext call as well.
  query_context_.MergeMax(shared_context_);
  policy_->SetQueryContext(&query_context_);
}

void BufferManager::Flush() {
  page_table_.clear();
  free_frames_.clear();
  for (size_t i = frames_.size(); i > 0; --i) {
    frames_[i - 1].meta.occupied = false;
    frames_[i - 1].pins = 0;
    free_frames_.push_back(static_cast<FrameId>(i - 1));
  }
  term_resident_.assign(term_resident_.size(), 0);
  policy_->Reset();
}

std::vector<PageId> BufferManager::ResidentPageIds() const {
  std::vector<PageId> out;
  out.reserve(page_table_.size());
  for (const Frame& f : frames_) {
    if (f.meta.occupied) out.push_back(f.meta.page);
  }
  return out;
}

}  // namespace irbuf::buffer
