#include "buffer/two_q_policy.h"

#include <algorithm>

namespace irbuf::buffer {

size_t TwoQPolicy::KinPages() const {
  return std::max<size_t>(
      1, static_cast<size_t>(kin_fraction_ *
                             static_cast<double>(directory_->capacity())));
}

size_t TwoQPolicy::KoutPages() const {
  return std::max<size_t>(
      1, static_cast<size_t>(kout_fraction_ *
                             static_cast<double>(directory_->capacity())));
}

void TwoQPolicy::RememberGhost(uint64_t packed_page) {
  if (a1out_set_.insert(packed_page).second) {
    a1out_fifo_.push_back(packed_page);
    while (a1out_fifo_.size() > KoutPages()) {
      a1out_set_.erase(a1out_fifo_.front());
      a1out_fifo_.pop_front();
    }
  }
}

void TwoQPolicy::OnInsert(FrameId frame) {
  if (frame_queue_.size() <= frame) {
    frame_queue_.resize(frame + 1, Queue::kNone);
  }
  uint64_t packed = directory_->Meta(frame).page.Pack();
  if (a1out_set_.count(packed) > 0) {
    // Seen before and aged out of A1in: this is a re-reference, admit to
    // the hot queue.
    frame_queue_[frame] = Queue::kAm;
    am_.Insert(frame);
  } else {
    frame_queue_[frame] = Queue::kA1In;
    a1in_.push_back(frame);
  }
}

void TwoQPolicy::OnHit(FrameId frame) {
  if (frame_queue_[frame] == Queue::kAm) am_.Touch(frame);
  // Hits in A1in deliberately do not promote or reorder (2Q full version).
}

void TwoQPolicy::OnEvict(FrameId frame) {
  if (frame_queue_[frame] == Queue::kA1In) {
    auto it = std::find(a1in_.begin(), a1in_.end(), frame);
    if (it != a1in_.end()) a1in_.erase(it);
    // Pages leaving A1in are remembered so a later re-reference is "hot".
    RememberGhost(directory_->Meta(frame).page.Pack());
  } else if (frame_queue_[frame] == Queue::kAm) {
    am_.Remove(frame);
  }
  frame_queue_[frame] = Queue::kNone;
}

FrameId TwoQPolicy::ChooseVictim() {
  if (a1in_.size() > KinPages() || am_.empty()) return a1in_.front();
  return am_.LeastRecent();
}

void TwoQPolicy::Reset() {
  a1in_.clear();
  am_.Clear();
  frame_queue_.assign(frame_queue_.size(), Queue::kNone);
  a1out_fifo_.clear();
  a1out_set_.clear();
}

}  // namespace irbuf::buffer
