// Least-Recently-Used replacement: the default policy of the file systems
// most document-retrieval systems are built on (Section 3.3). Known to
// degenerate under repeated sequential access [Sto81] — exactly the access
// pattern of query refinement over frequency-sorted inverted lists.

#ifndef IRBUF_BUFFER_LRU_POLICY_H_
#define IRBUF_BUFFER_LRU_POLICY_H_

#include "buffer/recency_list.h"
#include "buffer/replacement_policy.h"

namespace irbuf::buffer {

class LruPolicy final : public ReplacementPolicy {
 public:
  const char* name() const override { return "LRU"; }
  void OnInsert(FrameId frame) override { list_.Insert(frame); }
  void OnHit(FrameId frame) override { list_.Touch(frame); }
  void OnEvict(FrameId frame) override { list_.Remove(frame); }
  FrameId ChooseVictim() override { return list_.LeastRecent(); }
  void Reset() override { list_.Clear(); }

 private:
  RecencyList list_;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_LRU_POLICY_H_
