// CLOCK (second-chance) replacement: the classic low-overhead LRU
// approximation used by operating-system page caches. Included so the
// bench suite can compare the paper's policies against what "the file
// system underneath" would realistically do.

#ifndef IRBUF_BUFFER_CLOCK_POLICY_H_
#define IRBUF_BUFFER_CLOCK_POLICY_H_

#include <vector>

#include "buffer/replacement_policy.h"

namespace irbuf::buffer {

class ClockPolicy final : public ReplacementPolicy {
 public:
  const char* name() const override { return "CLOCK"; }
  void OnInsert(FrameId frame) override;
  void OnHit(FrameId frame) override;
  void OnEvict(FrameId frame) override;
  FrameId ChooseVictim() override;
  void Reset() override;

 private:
  std::vector<bool> resident_;
  std::vector<bool> referenced_;
  FrameId hand_ = 0;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_CLOCK_POLICY_H_
