// The query context handed to ranking-aware buffer replacement: the
// current query's term weights w_{q,t}. RAP's replacement value for a page
// is (highest w_{d,t} on the page) * w_{q,t} (Equation 6); terms absent
// from the current query have w_{q,t} = 0, so their pages are evicted
// first.

#ifndef IRBUF_BUFFER_QUERY_CONTEXT_H_
#define IRBUF_BUFFER_QUERY_CONTEXT_H_

#include <unordered_map>

#include "storage/types.h"

namespace irbuf::buffer {

/// Immutable-per-query mapping term -> w_{q,t}.
class QueryContext {
 public:
  QueryContext() = default;

  void SetWeight(TermId term, double weight) { weights_[term] = weight; }

  /// w_{q,t} of `term`; 0 when the term is not in the current query.
  double WeightOf(TermId term) const {
    auto it = weights_.find(term);
    return it == weights_.end() ? 0.0 : it->second;
  }

  /// Merges another query's weights keeping the maximum per term — the
  /// paper's first sketched multi-user extension ("if a term is shared by
  /// many queries, the highest w_{q,t} could be used", Section 3.3).
  void MergeMax(const QueryContext& other) {
    for (const auto& [term, w] : other.weights_) {
      auto [it, inserted] = weights_.emplace(term, w);
      if (!inserted && w > it->second) it->second = w;
    }
  }

  void Clear() { weights_.clear(); }
  size_t size() const { return weights_.size(); }

 private:
  std::unordered_map<TermId, double> weights_;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_QUERY_CONTEXT_H_
