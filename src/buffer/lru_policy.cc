#include "buffer/lru_policy.h"

// Header-only; anchors the translation unit.
