// First-In-First-Out replacement: the simplest baseline policy.

#ifndef IRBUF_BUFFER_FIFO_POLICY_H_
#define IRBUF_BUFFER_FIFO_POLICY_H_

#include <deque>

#include "buffer/replacement_policy.h"

namespace irbuf::buffer {

class FifoPolicy final : public ReplacementPolicy {
 public:
  const char* name() const override { return "FIFO"; }
  void OnInsert(FrameId frame) override { queue_.push_back(frame); }
  void OnHit(FrameId /*frame*/) override {}
  void OnEvict(FrameId frame) override;
  FrameId ChooseVictim() override { return queue_.front(); }
  void Reset() override { queue_.clear(); }

 private:
  std::deque<FrameId> queue_;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_FIFO_POLICY_H_
