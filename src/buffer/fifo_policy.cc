#include "buffer/fifo_policy.h"

#include <algorithm>

namespace irbuf::buffer {

void FifoPolicy::OnEvict(FrameId frame) {
  auto it = std::find(queue_.begin(), queue_.end(), frame);
  if (it != queue_.end()) queue_.erase(it);
}

}  // namespace irbuf::buffer
