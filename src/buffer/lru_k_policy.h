// LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD 1993). Evicts the
// page whose K-th most recent reference lies farthest in the past; pages
// with fewer than K references have infinite backward K-distance and are
// evicted first (ties broken by oldest last reference). Reference history
// is retained across evictions, as the LRU-K paper prescribes.
//
// The paper under reproduction asserts (Section 3.3, footnote 7) that
// LRU-K fares no better than LRU on refinement workloads; the policy is
// implemented here so the ablation bench can test that claim.

#ifndef IRBUF_BUFFER_LRU_K_POLICY_H_
#define IRBUF_BUFFER_LRU_K_POLICY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "buffer/replacement_policy.h"

namespace irbuf::buffer {

class LruKPolicy final : public ReplacementPolicy {
 public:
  /// `k` >= 1; k == 1 degenerates to LRU. Default is the classic LRU-2.
  explicit LruKPolicy(int k = 2);

  const char* name() const override { return name_.c_str(); }
  void OnInsert(FrameId frame) override;
  void OnHit(FrameId frame) override;
  void OnEvict(FrameId frame) override;
  FrameId ChooseVictim() override;
  void Reset() override;

 private:
  struct History {
    /// Reference clocks, most recent first; at most k entries.
    std::vector<uint64_t> refs;
  };

  void Touch(PageId page);
  /// K-th most recent reference time, or 0 when referenced < k times.
  uint64_t KDistanceClock(const History& h) const;
  /// Caps the retained-history map (non-resident ghosts) so a long
  /// session cannot grow it without bound: when it exceeds
  /// kHistoryFactor * pool capacity, the oldest half is dropped.
  void TrimHistory();

  static constexpr size_t kHistoryFactor = 32;

  int k_;
  std::string name_;
  uint64_t clock_ = 0;
  std::vector<bool> resident_;
  /// Retained reference history, keyed by packed PageId.
  std::unordered_map<uint64_t, History> history_;
};

}  // namespace irbuf::buffer

#endif  // IRBUF_BUFFER_LRU_K_POLICY_H_
