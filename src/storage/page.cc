#include "storage/page.h"

namespace irbuf::storage {

bool IsFrequencySorted(const std::vector<Posting>& postings) {
  for (size_t i = 1; i < postings.size(); ++i) {
    const Posting& prev = postings[i - 1];
    const Posting& cur = postings[i];
    if (cur.freq > prev.freq) return false;
    if (cur.freq == prev.freq && cur.doc <= prev.doc) return false;
  }
  return true;
}

bool IsDocumentOrdered(const std::vector<Posting>& postings) {
  for (size_t i = 1; i < postings.size(); ++i) {
    if (postings[i].doc <= postings[i - 1].doc) return false;
  }
  return true;
}

}  // namespace irbuf::storage
