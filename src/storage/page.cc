#include "storage/page.h"

namespace irbuf::storage {

bool IsFrequencySorted(const std::vector<Posting>& postings) {
  for (size_t i = 1; i < postings.size(); ++i) {
    const Posting& prev = postings[i - 1];
    const Posting& cur = postings[i];
    if (cur.freq > prev.freq) return false;
    if (cur.freq == prev.freq && cur.doc <= prev.doc) return false;
  }
  return true;
}

bool IsFrequencySorted(const PostingBlock& block) {
  for (size_t r = 0; r < block.runs.size(); ++r) {
    const PostingRun& run = block.runs[r];
    if (r > 0 && run.freq >= block.runs[r - 1].freq) return false;
    for (uint32_t i = run.begin + 1; i < run.end; ++i) {
      if (block.doc_ids[i] <= block.doc_ids[i - 1]) return false;
    }
  }
  return true;
}

bool IsDocumentOrdered(const std::vector<Posting>& postings) {
  for (size_t i = 1; i < postings.size(); ++i) {
    if (postings[i].doc <= postings[i - 1].doc) return false;
  }
  return true;
}

bool IsDocumentOrdered(const PostingBlock& block) {
  for (size_t i = 1; i < block.doc_ids.size(); ++i) {
    if (block.doc_ids[i] <= block.doc_ids[i - 1]) return false;
  }
  return true;
}

}  // namespace irbuf::storage
