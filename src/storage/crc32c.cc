#include "storage/crc32c.h"

#include <array>
#include <cstring>

namespace irbuf::storage {

namespace {

/// 4 x 256-entry slicing tables for the reflected Castagnoli polynomial,
/// generated once at static-initialization time (the generation loop is
/// a few microseconds; baking 4 KB of literals in would only obscure the
/// polynomial).
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

uint32_t Crc32cSw(const uint8_t* data, size_t n) {
  const Crc32cTables& tb = Tables();
  uint32_t crc = 0xFFFFFFFFu;
  size_t i = 0;
  // Slicing-by-4 over aligned-enough 4-byte groups.
  for (; i + 4 <= n; i += 4) {
    crc ^= static_cast<uint32_t>(data[i]) |
           (static_cast<uint32_t>(data[i + 1]) << 8) |
           (static_cast<uint32_t>(data[i + 2]) << 16) |
           (static_cast<uint32_t>(data[i + 3]) << 24);
    crc = tb.t[3][crc & 0xFFu] ^ tb.t[2][(crc >> 8) & 0xFFu] ^
          tb.t[1][(crc >> 16) & 0xFFu] ^ tb.t[0][crc >> 24];
  }
  for (; i < n; ++i) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ data[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

#if defined(__x86_64__) && defined(__GNUC__)
/// SSE4.2 crc32 instruction path, ~8 bytes/cycle: the polynomial the
/// instruction implements is exactly Castagnoli, so the two paths are
/// bit-identical (the check-value test runs whichever one dispatches).
__attribute__((target("sse4.2"))) uint32_t Crc32cHw(const uint8_t* data,
                                                    size_t n) {
  uint64_t crc = 0xFFFFFFFFu;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    crc = __builtin_ia32_crc32di(crc, word);
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
  for (; i < n; ++i) {
    crc32 = __builtin_ia32_crc32qi(crc32, data[i]);
  }
  return crc32 ^ 0xFFFFFFFFu;
}
#endif

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t n) {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool has_sse42 = __builtin_cpu_supports("sse4.2");
  if (has_sse42) return Crc32cHw(data, n);
#endif
  return Crc32cSw(data, n);
}

}  // namespace irbuf::storage
