// Response-time estimation over the simulator's counters. The paper
// measures disk reads and notes that CPU cost (decompression + score
// arithmetic) is directly proportional to them (Section 2.4); this model
// turns both counters into a wall-clock estimate so benches can report a
// response-time column alongside raw reads.

#ifndef IRBUF_STORAGE_COST_MODEL_H_
#define IRBUF_STORAGE_COST_MODEL_H_

#include <cstdint>

namespace irbuf::storage {

/// Cost parameters. Defaults model a mid-1990s disk (the paper's era):
/// ~10 ms average positioning per random page read, and a CPU that
/// processes ~1 posting/us (decompress + accumulate).
struct CostModel {
  double seek_ms_per_read = 10.0;
  double transfer_ms_per_read = 0.5;
  double cpu_us_per_posting = 1.0;

  /// Estimated elapsed milliseconds for a run that performed
  /// `disk_reads` page reads and processed `postings` entries.
  /// I/O and CPU are charged sequentially (single-threaded evaluation,
  /// synchronous reads — the setting of the paper's system).
  double ElapsedMs(uint64_t disk_reads, uint64_t postings) const {
    return static_cast<double>(disk_reads) *
               (seek_ms_per_read + transfer_ms_per_read) +
           static_cast<double>(postings) * cpu_us_per_posting / 1000.0;
  }

  /// A model of a contemporary NVMe device, for the ablation bench's
  /// "does the trade-off still hold on modern hardware" question: reads
  /// are ~100x cheaper relative to CPU.
  static CostModel ModernNvme() {
    return CostModel{0.08, 0.02, 1.0};
  }

  /// The default 1990s disk.
  static CostModel PaperEra() { return CostModel{}; }
};

}  // namespace irbuf::storage

#endif  // IRBUF_STORAGE_COST_MODEL_H_
