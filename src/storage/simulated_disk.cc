#include "storage/simulated_disk.h"

#include "storage/crc32c.h"
#include "util/str.h"

namespace irbuf::storage {

Status SimulatedDisk::AppendPage(TermId term,
                                 const std::vector<Posting>& postings,
                                 double max_weight) {
  if (postings.empty()) {
    return Status::InvalidArgument("cannot append an empty page");
  }
  // Pages must follow one of the two supported physical orders.
  if (!IsFrequencySorted(postings) && !IsDocumentOrdered(postings)) {
    return Status::InvalidArgument(
        StrFormat("page for term %u is neither frequency-sorted nor "
                  "document-ordered",
                  term));
  }
  if (term >= files_.size()) files_.resize(term + 1);
  EncodedPage page;
  page.image = EncodePostings(postings);
  page.max_weight = max_weight;
  page.crc = Crc32c(page.image);
  compressed_bytes_ += page.image.size();
  total_postings_ += postings.size();
  ++total_pages_;
  files_[term].push_back(std::move(page));
  return Status::OK();
}

Status SimulatedDisk::AppendEncodedPage(TermId term,
                                        std::vector<uint8_t> image,
                                        double max_weight) {
  Result<std::vector<Posting>> decoded = DecodePostings(image);
  if (!decoded.ok()) return decoded.status();
  if (decoded.value().empty()) {
    return Status::InvalidArgument("encoded page holds no postings");
  }
  if (!IsFrequencySorted(decoded.value()) &&
      !IsDocumentOrdered(decoded.value())) {
    return Status::InvalidArgument(
        StrFormat("encoded page for term %u is neither frequency-sorted "
                  "nor document-ordered",
                  term));
  }
  if (term >= files_.size()) files_.resize(term + 1);
  EncodedPage page;
  compressed_bytes_ += image.size();
  total_postings_ += decoded.value().size();
  ++total_pages_;
  page.image = std::move(image);
  page.max_weight = max_weight;
  page.crc = Crc32c(page.image);
  files_[term].push_back(std::move(page));
  return Status::OK();
}

Result<const std::vector<uint8_t>*> SimulatedDisk::PageImage(
    PageId id) const {
  if (id.term >= files_.size() || id.page_no >= files_[id.term].size()) {
    return Status::NotFound(
        StrFormat("no page %u in inverted list of term %u", id.page_no,
                  id.term));
  }
  return &files_[id.term][id.page_no].image;
}

Status SimulatedDisk::BeginRead(PageId id, PageReadOp* op) const {
  op->latency_multiplier = 1.0;
  if (id.term >= files_.size() || id.page_no >= files_[id.term].size()) {
    return Status::NotFound(
        StrFormat("no page %u in inverted list of term %u", id.page_no,
                  id.term));
  }
  const EncodedPage& stored = files_[id.term][id.page_no];
  fault::FaultDecision fate;
  if (injector_ != nullptr) {
    fate = injector_->Consult(id);
    op->latency_multiplier = fate.latency_multiplier;
    if (fate.outcome == fault::FaultDecision::Outcome::kPermanent) {
      return Status::IOError(
          StrFormat("bad page: term %u page %u failed media", id.term,
                    id.page_no));
    }
    if (fate.outcome == fault::FaultDecision::Outcome::kTransient) {
      return Status::Unavailable(
          StrFormat("transient read error on term %u page %u", id.term,
                    id.page_no));
    }
  }
  op->image = &stored.image;
  op->stored_crc = stored.crc;
  op->max_weight = stored.max_weight;
  if (fate.outcome == fault::FaultDecision::Outcome::kBitFlip &&
      !stored.image.empty()) {
    // Corrupt a copy, never the stored image: a bit flipped in flight
    // clears on retry, which is what makes kCorrupted retryable.
    op->flipped = stored.image;
    const uint64_t bit = fate.flip_bit % (op->flipped.size() * 8);
    op->flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    op->image = &op->flipped;
  }
  return Status::OK();
}

Status SimulatedDisk::FinishRead(PageId id, const PageReadOp& op,
                                 Page* out) const {
  const std::vector<uint8_t>& image = *op.image;
  uint32_t crc;
  {
    obs::ScopedSpan crc_span(span_recorder_, obs::SpanStage::kCrcVerify,
                             id.term);
    crc = Crc32c(image);
  }
  if (crc != op.stored_crc) {
    return Status::Corrupted(
        StrFormat("checksum mismatch on term %u page %u: stored %08x, "
                  "computed %08x",
                  id.term, id.page_no, op.stored_crc, crc));
  }
  // Block decode straight into the caller's page: the buffer pool hands
  // us its frame's Page, so the block's buffers are reused across the
  // frame's lifetime and steady-state decode allocates nothing.
  {
    obs::ScopedSpan decode_span(span_recorder_, obs::SpanStage::kBlockDecode,
                                id.term);
    IRBUF_RETURN_NOT_OK(DecodePostingsInto(image, &out->block));
  }
  out->id = id;
  out->max_weight = op.max_weight;
  reads_.fetch_add(1, std::memory_order_relaxed);
  postings_decoded_.fetch_add(out->block.size(),
                              std::memory_order_relaxed);
  bytes_read_.fetch_add(image.size(), std::memory_order_relaxed);
  if (metrics_.reads != nullptr) {
    metrics_.reads->Add(1);
    metrics_.postings_decoded->Add(out->block.size());
    metrics_.bytes_read->Add(image.size());
    metrics_.postings_per_page->Observe(
        static_cast<double>(out->block.size()));
  }
  return Status::OK();
}

Status SimulatedDisk::ReadPage(PageId id, Page* out,
                               double* latency_multiplier) const {
  PageReadOp op;
  const Status begun = BeginRead(id, &op);
  if (latency_multiplier != nullptr) {
    *latency_multiplier = op.latency_multiplier;
  }
  IRBUF_RETURN_NOT_OK(begun);
  return FinishRead(id, op, out);
}

void SimulatedDisk::BindMetrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) {
    metrics_ = MetricHandles{};
    return;
  }
  metrics_.reads =
      registry->AddCounter("disk.reads", "pages read (decoded) from disk");
  metrics_.postings_decoded = registry->AddCounter(
      "disk.postings_decoded", "postings decompressed by reads");
  metrics_.bytes_read = registry->AddCounter(
      "disk.bytes_read", "compressed bytes moved by reads");
  metrics_.postings_per_page = registry->AddHistogram(
      "disk.postings_per_page", {32.0, 64.0, 128.0, 256.0, 404.0, 512.0},
      "postings per decoded page");
}

double SimulatedDisk::PageMaxWeight(PageId id) const {
  if (id.term >= files_.size() || id.page_no >= files_[id.term].size()) {
    return 0.0;
  }
  return files_[id.term][id.page_no].max_weight;
}

}  // namespace irbuf::storage
