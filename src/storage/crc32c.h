// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// page-image checksum written by SimulatedDisk at append time and
// verified on every read, so silent corruption (a flipped bit anywhere
// in the compressed image) surfaces as a typed kCorrupted Status instead
// of garbage postings. Dispatches at first call to the SSE4.2 crc32
// instruction (~8 bytes/cycle) where available, with a slicing-by-4
// table fallback; both compute the same function, pinned by the
// check-value test.

#ifndef IRBUF_STORAGE_CRC32C_H_
#define IRBUF_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace irbuf::storage {

/// CRC32C of `data[0..n)`. Crc32c("123456789") == 0xE3069283 (the
/// standard check value; pinned by tests/storage/crc32c_test.cc).
uint32_t Crc32c(const uint8_t* data, size_t n);

inline uint32_t Crc32c(const std::vector<uint8_t>& data) {
  return Crc32c(data.data(), data.size());
}

}  // namespace irbuf::storage

#endif  // IRBUF_STORAGE_CRC32C_H_
