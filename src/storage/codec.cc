#include "storage/codec.h"

#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

namespace irbuf::storage {

void VByteEncode(uint32_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value & 0x7f));
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value | 0x80));
}

bool VByteDecode(const std::vector<uint8_t>& in, size_t* pos,
                 uint32_t* value) {
  uint32_t v = 0;
  int shift = 0;
  while (*pos < in.size()) {
    uint8_t byte = in[(*pos)++];
    if (byte & 0x80) {
      *value = v | (static_cast<uint32_t>(byte & 0x7f) << shift);
      return true;
    }
    v |= static_cast<uint32_t>(byte) << shift;
    shift += 7;
    if (shift > 28) return false;  // Over-long encoding.
  }
  return false;
}

std::vector<uint8_t> EncodePostings(const std::vector<Posting>& postings) {
  std::vector<uint8_t> out;
  out.reserve(postings.size() + 8);
  VByteEncode(static_cast<uint32_t>(postings.size()), &out);
  size_t i = 0;
  while (i < postings.size()) {
    uint32_t freq = postings[i].freq;
    size_t run_end = i;
    while (run_end < postings.size() && postings[run_end].freq == freq) {
      ++run_end;
    }
    VByteEncode(freq, &out);
    VByteEncode(static_cast<uint32_t>(run_end - i), &out);
    DocId prev = 0;
    for (size_t j = i; j < run_end; ++j) {
      // First doc id absolute, subsequent ones gap-encoded (gap >= 1).
      uint32_t delta = (j == i) ? postings[j].doc : postings[j].doc - prev;
      VByteEncode(delta, &out);
      prev = postings[j].doc;
    }
    i = run_end;
  }
  return out;
}

Result<std::vector<Posting>> DecodePostings(const std::vector<uint8_t>& in) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!VByteDecode(in, &pos, &count)) {
    return Status::IOError("truncated postings header");
  }
  std::vector<Posting> postings;
  postings.reserve(count);
  while (postings.size() < count) {
    uint32_t freq = 0, run = 0;
    if (!VByteDecode(in, &pos, &freq) || !VByteDecode(in, &pos, &run)) {
      return Status::IOError("truncated run header");
    }
    if (run == 0 || postings.size() + run > count) {
      return Status::IOError("corrupt run length");
    }
    DocId doc = 0;
    for (uint32_t j = 0; j < run; ++j) {
      uint32_t delta = 0;
      if (!VByteDecode(in, &pos, &delta)) {
        return Status::IOError("truncated doc gap");
      }
      doc = (j == 0) ? delta : doc + delta;
      postings.push_back(Posting{doc, freq});
    }
  }
  if (pos != in.size()) {
    return Status::IOError("trailing bytes after postings");
  }
  return postings;
}

void PostingBlock::FromPostings(const std::vector<Posting>& postings) {
  Clear();
  doc_ids.reserve(postings.size());
  freqs.reserve(postings.size());
  size_t i = 0;
  while (i < postings.size()) {
    uint32_t freq = postings[i].freq;
    size_t run_end = i;
    while (run_end < postings.size() && postings[run_end].freq == freq) {
      ++run_end;
    }
    runs.push_back(PostingRun{freq, static_cast<uint32_t>(i),
                              static_cast<uint32_t>(run_end)});
    for (size_t j = i; j < run_end; ++j) {
      doc_ids.push_back(postings[j].doc);
      freqs.push_back(freq);
    }
    i = run_end;
  }
}

std::vector<Posting> PostingBlock::ToPostings() const {
  std::vector<Posting> out;
  out.reserve(doc_ids.size());
  for (size_t i = 0; i < doc_ids.size(); ++i) {
    out.push_back(Posting{doc_ids[i], freqs[i]});
  }
  return out;
}

namespace {

/// Pointer-based scalar vbyte read used by the block decoder (same
/// format and same over-long rejection as VByteDecode, minus the
/// std::vector indexing).
inline bool ReadVByte(const uint8_t** pp, const uint8_t* end,
                      uint32_t* value) {
  const uint8_t* p = *pp;
  uint32_t v = 0;
  int shift = 0;
  while (p < end) {
    uint8_t byte = *p++;
    if (byte & 0x80) {
      *value = v | (static_cast<uint32_t>(byte & 0x7f) << shift);
      *pp = p;
      return true;
    }
    v |= static_cast<uint32_t>(byte) << shift;
    shift += 7;
    if (shift > 28) return false;  // Over-long encoding.
  }
  return false;
}

constexpr uint64_t kTerminators = 0x8080808080808080ull;

#if defined(__x86_64__) && defined(__GNUC__)
/// 16-wide fast path: _mm_movemask_epi8 tests all 16 high bits in one
/// instruction; when every byte terminates a gap, the prefix sum runs
/// in-register (two shift-adds per 4-lane group) so only one serial
/// `doc` dependency remains per 4 postings instead of per posting.
/// Decodes exactly the same values as the portable path (the
/// round-trip tests run whichever one dispatches). Returns the new
/// fill count; `doc_io` carries the running absolute doc id.
__attribute__((target("sse4.1"))) uint32_t DecodeDocsSse(
    const uint8_t** pp, const uint8_t* end, uint32_t* docs, uint32_t got,
    uint32_t run, uint32_t* doc_io) {
  const uint8_t* p = *pp;
  uint32_t doc = *doc_io;
  // LINT-HOT-LOOP: block-decode bulk gap loop (SSE4.1, fused prefix sum).
  while (run - got >= 16 && end - p >= 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    if (_mm_movemask_epi8(v) != 0xFFFF) break;  // Continuation byte present.
    __m128i m = _mm_and_si128(v, _mm_set1_epi8(0x7f));
    for (int g = 0; g < 4; ++g) {
      __m128i x = _mm_cvtepu8_epi32(m);
      m = _mm_srli_si128(m, 4);
      x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
      x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
      x = _mm_add_epi32(x, _mm_set1_epi32(static_cast<int>(doc)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(docs + got + 4 * g), x);
      doc = static_cast<uint32_t>(_mm_extract_epi32(x, 3));
    }
    p += 16;
    got += 16;
  }
  // LINT-HOT-LOOP-END
  *pp = p;
  *doc_io = doc;
  return got;
}
#endif

/// Decodes one run's doc ids — the absolute first id, then `run - 1`
/// gaps — resolving the prefix sum on the fly so `docs` holds absolute
/// ids when this returns. At ~1 byte/posting compression almost every
/// gap is a single terminator byte, so the loop reads 8 source bytes at
/// a time: an all-terminator word decodes branch-free, and a mixed word
/// still salvages its leading single-byte gaps (count-trailing-zeros on
/// the inverted terminator mask) before one scalar vbyte handles the
/// multi-byte gap. Returns false on truncated or over-long input.
inline bool DecodeRunDocs(const uint8_t** pp, const uint8_t* end,
                          uint32_t* docs, uint32_t run) {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool has_sse41 = __builtin_cpu_supports("sse4.1");
#endif
  const uint8_t* p = *pp;
  uint32_t doc = 0;
  if (!ReadVByte(&p, end, &doc)) return false;  // First doc id is absolute.
  docs[0] = doc;
  uint32_t got = 1;
  // LINT-HOT-LOOP: block-decode bulk gap loop (fused prefix sum).
  while (run - got >= 8 && end - p >= 8) {
#if defined(__x86_64__) && defined(__GNUC__)
    if (has_sse41) {
      got = DecodeDocsSse(&p, end, docs, got, run, &doc);
      if (run - got < 8 || end - p < 8) break;
    }
#endif
    uint64_t w;
    std::memcpy(&w, p, 8);
    const uint64_t term = w & kTerminators;
    if (term == kTerminators) {
      doc += static_cast<uint32_t>(w) & 0x7f;
      docs[got + 0] = doc;
      doc += static_cast<uint32_t>(w >> 8) & 0x7f;
      docs[got + 1] = doc;
      doc += static_cast<uint32_t>(w >> 16) & 0x7f;
      docs[got + 2] = doc;
      doc += static_cast<uint32_t>(w >> 24) & 0x7f;
      docs[got + 3] = doc;
      doc += static_cast<uint32_t>(w >> 32) & 0x7f;
      docs[got + 4] = doc;
      doc += static_cast<uint32_t>(w >> 40) & 0x7f;
      docs[got + 5] = doc;
      doc += static_cast<uint32_t>(w >> 48) & 0x7f;
      docs[got + 6] = doc;
      doc += static_cast<uint32_t>(w >> 56) & 0x7f;
      docs[got + 7] = doc;
      p += 8;
      got += 8;
      continue;
    }
    // Mixed word: bytes 0..k-1 are terminators (k single-byte gaps to
    // salvage); byte k opens a multi-byte gap, decoded scalar.
    const uint32_t k =
        static_cast<uint32_t>(__builtin_ctzll(~term & kTerminators)) >> 3;
    for (uint32_t j = 0; j < k; ++j) {
      doc += static_cast<uint32_t>(w >> (8 * j)) & 0x7f;
      docs[got + j] = doc;
    }
    p += k;
    got += k;
    uint32_t gap = 0;
    if (!ReadVByte(&p, end, &gap)) return false;
    doc += gap;
    docs[got++] = doc;
  }
  // LINT-HOT-LOOP-END
  while (got < run) {  // Scalar tail (< 8 gaps remain).
    uint32_t gap = 0;
    if (!ReadVByte(&p, end, &gap)) return false;
    doc += gap;
    docs[got++] = doc;
  }
  *pp = p;
  return true;
}

}  // namespace

Status DecodePostingsInto(const std::vector<uint8_t>& in, PostingBlock* out) {
  out->runs.clear();
  const uint8_t* p = in.data();
  const uint8_t* end = p + in.size();
  uint32_t count = 0;
  if (!ReadVByte(&p, end, &count)) {
    return Status::Corrupted("truncated postings header");
  }
  // Every posting costs at least one encoded byte, so a count exceeding
  // the image size is corrupt; rejecting it here also bounds the resize
  // below (the legacy path would blindly reserve()).
  if (count > in.size()) {
    return Status::Corrupted("implausible posting count");
  }
  out->doc_ids.resize(count);
  out->freqs.resize(count);
  uint32_t filled = 0;
  while (filled < count) {
    uint32_t freq = 0, run = 0;
    if (!ReadVByte(&p, end, &freq) || !ReadVByte(&p, end, &run)) {
      return Status::Corrupted("truncated run header");
    }
    // 64-bit sum: a crafted run near 2^32 would wrap uint32 arithmetic
    // past the `> count` rejection and overflow doc_ids below.
    if (run == 0 || static_cast<uint64_t>(filled) + run > count) {
      return Status::Corrupted("corrupt run length");
    }
    uint32_t* docs = out->doc_ids.data() + filled;
    if (!DecodeRunDocs(&p, end, docs, run)) {
      return Status::Corrupted("truncated doc gap");
    }
    // LINT-HOT-LOOP: freq fill.
    uint32_t* fq = out->freqs.data() + filled;
    for (uint32_t j = 0; j < run; ++j) fq[j] = freq;
    // LINT-HOT-LOOP-END
    out->runs.push_back(PostingRun{freq, filled, filled + run});
    filled += run;
  }
  if (p != end) {
    return Status::Corrupted("trailing bytes after postings");
  }
  return Status();
}

}  // namespace irbuf::storage
