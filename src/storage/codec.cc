#include "storage/codec.h"

namespace irbuf::storage {

void VByteEncode(uint32_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value & 0x7f));
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value | 0x80));
}

bool VByteDecode(const std::vector<uint8_t>& in, size_t* pos,
                 uint32_t* value) {
  uint32_t v = 0;
  int shift = 0;
  while (*pos < in.size()) {
    uint8_t byte = in[(*pos)++];
    if (byte & 0x80) {
      *value = v | (static_cast<uint32_t>(byte & 0x7f) << shift);
      return true;
    }
    v |= static_cast<uint32_t>(byte) << shift;
    shift += 7;
    if (shift > 28) return false;  // Over-long encoding.
  }
  return false;
}

std::vector<uint8_t> EncodePostings(const std::vector<Posting>& postings) {
  std::vector<uint8_t> out;
  out.reserve(postings.size() + 8);
  VByteEncode(static_cast<uint32_t>(postings.size()), &out);
  size_t i = 0;
  while (i < postings.size()) {
    uint32_t freq = postings[i].freq;
    size_t run_end = i;
    while (run_end < postings.size() && postings[run_end].freq == freq) {
      ++run_end;
    }
    VByteEncode(freq, &out);
    VByteEncode(static_cast<uint32_t>(run_end - i), &out);
    DocId prev = 0;
    for (size_t j = i; j < run_end; ++j) {
      // First doc id absolute, subsequent ones gap-encoded (gap >= 1).
      uint32_t delta = (j == i) ? postings[j].doc : postings[j].doc - prev;
      VByteEncode(delta, &out);
      prev = postings[j].doc;
    }
    i = run_end;
  }
  return out;
}

Result<std::vector<Posting>> DecodePostings(const std::vector<uint8_t>& in) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!VByteDecode(in, &pos, &count)) {
    return Status::IOError("truncated postings header");
  }
  std::vector<Posting> postings;
  postings.reserve(count);
  while (postings.size() < count) {
    uint32_t freq = 0, run = 0;
    if (!VByteDecode(in, &pos, &freq) || !VByteDecode(in, &pos, &run)) {
      return Status::IOError("truncated run header");
    }
    if (run == 0 || postings.size() + run > count) {
      return Status::IOError("corrupt run length");
    }
    DocId doc = 0;
    for (uint32_t j = 0; j < run; ++j) {
      uint32_t delta = 0;
      if (!VByteDecode(in, &pos, &delta)) {
        return Status::IOError("truncated doc gap");
      }
      doc = (j == 0) ? delta : doc + delta;
      postings.push_back(Posting{doc, freq});
    }
  }
  if (pos != in.size()) {
    return Status::IOError("trailing bytes after postings");
  }
  return postings;
}

}  // namespace irbuf::storage
