// The simulated disk underneath the buffer manager. Pages are stored
// compressed (as a real frequency-sorted inverted file would be, [PZSD96]);
// a read decodes the page image and bumps the read counters, which are the
// paper's primary efficiency metric. The paper's own study runs entirely in
// memory and counts page reads the same way (Section 4).

#ifndef IRBUF_STORAGE_SIMULATED_DISK_H_
#define IRBUF_STORAGE_SIMULATED_DISK_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/codec.h"
#include "storage/page.h"
#include "storage/types.h"
#include "util/status.h"

namespace irbuf::storage {

/// Cumulative I/O accounting. `reads` is the headline metric (disk pages
/// read); `postings_decoded` tracks the decompression CPU cost, which the
/// paper notes is directly proportional to reads (Section 2.4).
struct DiskStats {
  uint64_t reads = 0;
  uint64_t postings_decoded = 0;
  uint64_t bytes_read = 0;
};

/// An append-once, read-many paged store with one "file" per term.
class SimulatedDisk {
 public:
  SimulatedDisk() = default;

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  /// Appends the next page of `term`'s inverted list. Pages of one term
  /// must be appended in order; `postings` must be frequency-sorted.
  /// `max_weight` is the page's highest w_{d,t}, stored as page metadata
  /// for the RAP policy.
  Status AppendPage(TermId term, const std::vector<Posting>& postings,
                    double max_weight);

  /// Appends an already-encoded page image (the persistence load path).
  /// The image is decoded once to validate it and count its postings.
  Status AppendEncodedPage(TermId term, std::vector<uint8_t> image,
                           double max_weight);

  /// Reads (decodes) one page into `*out` and records the I/O. Every
  /// read verifies the page image against its stored CRC32C; a mismatch
  /// is kCorrupted. With a fault injector attached, the read may also
  /// fail kUnavailable (transient) or kIOError (permanent bad page).
  /// `latency_multiplier`, when non-null, receives the device-delay
  /// factor for this read (1.0 normally; > 1.0 under an injected
  /// latency spike) — reported even when the read fails, since the
  /// device spent the time before erroring.
  Status ReadPage(PageId id, Page* out,
                  double* latency_multiplier) const;
  Status ReadPage(PageId id, Page* out) const {
    return ReadPage(id, out, nullptr);
  }

  /// One in-flight two-phase read (see BeginRead/FinishRead): the
  /// device-transfer half's result, carried to the decode half. `image`
  /// borrows the stored page image — valid until the disk is destroyed
  /// (images are append-once, never mutated) — unless an injected
  /// bit-flip fired, in which case it points at the op's own `flipped`
  /// copy (retries then re-Begin and read the clean stored image).
  struct PageReadOp {
    const std::vector<uint8_t>* image = nullptr;
    std::vector<uint8_t> flipped;
    uint32_t stored_crc = 0;
    double max_weight = 0.0;
    double latency_multiplier = 1.0;
  };

  /// Phase 1 of a two-phase read: the simulated device transfer. Bounds
  /// checks, consults the fault injector (kUnavailable / kIOError
  /// surface here, and `op->latency_multiplier` carries any injected
  /// spike factor), and hands back the encoded image. No counters move
  /// yet — a read is only counted when FinishRead decodes successfully,
  /// exactly like the fused ReadPage.
  Status BeginRead(PageId id, PageReadOp* op) const;

  /// Phase 2: CRC verification (kCorrupted on mismatch) and posting-
  /// block decode into `*out`, recording the kCrcVerify/kBlockDecode
  /// spans and bumping the read counters on success. The async serve
  /// pool runs its simulated device delay between the phases so its
  /// in-flight table can distinguish "reading" from "decoding";
  /// ReadPage(id, out, mult) == BeginRead + FinishRead back to back.
  Status FinishRead(PageId id, const PageReadOp& op, Page* out) const;

  /// Number of pages in `term`'s inverted list (0 for unknown terms).
  uint32_t NumPages(TermId term) const {
    return term < files_.size()
               ? static_cast<uint32_t>(files_[term].size())
               : 0;
  }

  /// Page metadata without performing a read (used only by tests and the
  /// index builder; the evaluators never peek).
  double PageMaxWeight(PageId id) const;

  /// Raw compressed page image (persistence save path; not a "read").
  Result<const std::vector<uint8_t>*> PageImage(PageId id) const;

  size_t num_terms() const { return files_.size(); }
  uint64_t total_pages() const { return total_pages_; }
  uint64_t total_postings() const { return total_postings_; }
  uint64_t compressed_bytes() const { return compressed_bytes_; }

  /// Point-in-time copy of the read counters. Reads are counted with
  /// relaxed atomics, so concurrent readers (the serving subsystem) stay
  /// race-free; the snapshot is exact whenever the disk is quiesced.
  DiskStats stats() const {
    DiskStats s;
    s.reads = reads_.load(std::memory_order_relaxed);
    s.postings_decoded = postings_decoded_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    return s;
  }

  /// Zeroes the disk's own counters only. Disk stats are fully
  /// independent of any BufferManager's BufferStats layered on top: a
  /// buffer flush or BufferManager::ResetStats() never touches these,
  /// and vice versa. (Invariant when both start from zero:
  /// stats().reads == pool misses.)
  void ResetStats() {
    reads_.store(0, std::memory_order_relaxed);
    postings_decoded_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
  }

  /// Resolves metric handles in `registry` (disk.reads,
  /// disk.postings_decoded, disk.bytes_read, disk.postings_per_page) so
  /// every subsequent ReadPage also reports there. Resolution happens
  /// once, here; the read path only dereferences the cached handles.
  /// Pass nullptr to unbind. Observational only, hence const.
  void BindMetrics(obs::MetricsRegistry* registry) const;

  /// Attaches a fault injector consulted on every subsequent ReadPage
  /// (nullptr to detach). The injector outlives the attachment; the
  /// disk never owns it. Const for the same reason as BindMetrics: the
  /// index hands out `const SimulatedDisk&` and fault injection, like
  /// metrics, does not alter the stored pages.
  void SetFaultInjector(const fault::FaultInjector* injector) const {
    injector_ = injector;
  }
  const fault::FaultInjector* fault_injector() const { return injector_; }

  /// Attaches a span recorder so every subsequent ReadPage times its
  /// CRC verification (kCrcVerify) and posting-block decode
  /// (kBlockDecode) on the reading thread; nullptr to detach (the
  /// default — reads then pay one null test). Const for the same
  /// reason as SetFaultInjector: tracing observes, it does not alter
  /// the stored pages. Attach/detach only while reads are quiesced.
  void SetSpanRecorder(obs::SpanRecorder* recorder) const {
    span_recorder_ = recorder;
  }
  obs::SpanRecorder* span_recorder() const { return span_recorder_; }

 private:
  struct EncodedPage {
    std::vector<uint8_t> image;
    double max_weight = 0.0;
    /// CRC32C of `image`, fixed at append time and verified by every
    /// read (silent-corruption detection).
    uint32_t crc = 0;
  };

  /// Pre-resolved registry handles (all null when unbound).
  struct MetricHandles {
    obs::Counter* reads = nullptr;
    obs::Counter* postings_decoded = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Histogram* postings_per_page = nullptr;
  };

  std::vector<std::vector<EncodedPage>> files_;
  uint64_t total_pages_ = 0;
  uint64_t total_postings_ = 0;
  uint64_t compressed_bytes_ = 0;
  // ReadPage is const and called concurrently by the serving subsystem's
  // worker threads; counters are relaxed atomics (counts only, no
  // ordering is derived from them).
  mutable std::atomic<uint64_t> reads_{0};
  mutable std::atomic<uint64_t> postings_decoded_{0};
  mutable std::atomic<uint64_t> bytes_read_{0};
  mutable MetricHandles metrics_;
  /// Borrowed, not owned; nullptr = fault-free operation.
  mutable const fault::FaultInjector* injector_ = nullptr;
  /// Borrowed, not owned; nullptr = no read-path span tracing.
  mutable obs::SpanRecorder* span_recorder_ = nullptr;
};

}  // namespace irbuf::storage

#endif  // IRBUF_STORAGE_SIMULATED_DISK_H_
