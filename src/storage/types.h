// Fundamental identifier and posting types shared across the storage,
// index, buffer and evaluation layers.

#ifndef IRBUF_STORAGE_TYPES_H_
#define IRBUF_STORAGE_TYPES_H_

#include <cstdint>
#include <functional>

namespace irbuf {

/// Identifier of a document in the collection, in [0, N).
using DocId = uint32_t;

/// Identifier of a term in the lexicon, in [0, num_terms).
using TermId = uint32_t;

/// One inverted-list entry: document d contains the list's term f_{d,t}
/// times. Lists are ordered by freq descending (frequency-sorted index,
/// [WL93, Per94]), ties broken by doc ascending.
struct Posting {
  DocId doc = 0;
  uint32_t freq = 0;

  bool operator==(const Posting&) const = default;
};

/// Globally unique identifier of one disk page: page `page_no` of the
/// inverted list of `term`. The paper stores each inverted list in its own
/// file (Section 4.1), so (term, page_no) is the natural address.
struct PageId {
  TermId term = 0;
  uint32_t page_no = 0;

  bool operator==(const PageId&) const = default;

  /// Packs the id into a single 64-bit key for hashing.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(term) << 32) | page_no;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    // SplitMix64 finalizer over the packed key.
    uint64_t x = id.Pack();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace irbuf

#endif  // IRBUF_STORAGE_TYPES_H_
