// In-memory (decoded) representation of one inverted-list page, plus the
// page-level metadata RAP needs (the highest term weight on the page,
// computed at index-build time — Section 3.3, Equation 6).

#ifndef IRBUF_STORAGE_PAGE_H_
#define IRBUF_STORAGE_PAGE_H_

#include <cstdint>
#include <vector>

#include "storage/types.h"

namespace irbuf::storage {

/// The paper's page capacity: one tenth of a 4 KB page at 1 byte per
/// compressed posting holds 404 entries (Section 4.2).
inline constexpr uint32_t kDefaultPageSize = 404;

/// One decoded page of an inverted list.
struct Page {
  PageId id;
  /// Postings in frequency-descending order (doc-ascending within ties).
  std::vector<Posting> postings;
  /// max_d w_{d,t} over this page = (highest f_{d,t} on the page) * idf_t.
  /// Stored on the page at database creation time, as Section 3.3 requires,
  /// so the replacement policy can read it without recomputation.
  double max_weight = 0.0;

  /// Highest frequency on the page (first posting, by sort order).
  uint32_t MaxFreq() const {
    return postings.empty() ? 0 : postings.front().freq;
  }
  /// Lowest frequency on the page (last posting, by sort order).
  uint32_t MinFreq() const {
    return postings.empty() ? 0 : postings.back().freq;
  }
};

/// Validates the frequency-sorted invariant of a postings run:
/// freq non-increasing, doc strictly increasing within equal freq.
bool IsFrequencySorted(const std::vector<Posting>& postings);

/// Validates the document-ordered invariant: doc strictly increasing.
bool IsDocumentOrdered(const std::vector<Posting>& postings);

}  // namespace irbuf::storage

#endif  // IRBUF_STORAGE_PAGE_H_
