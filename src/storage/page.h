// In-memory (decoded) representation of one inverted-list page, plus the
// page-level metadata RAP needs (the highest term weight on the page,
// computed at index-build time — Section 3.3, Equation 6).
//
// Decoded postings live in a struct-of-arrays PostingBlock (doc_ids[],
// freqs[], equal-frequency run extents): buffer-pool frames cache the
// block, so a hit hands evaluators a fully decoded `const PostingBlock&`
// with zero decode work, and the block's buffers are reused across the
// frame's lifetime (zero steady-state allocations on the decode path).
// Cold callers that still want AoS postings use MaterializePostings().

#ifndef IRBUF_STORAGE_PAGE_H_
#define IRBUF_STORAGE_PAGE_H_

#include <cstdint>
#include <vector>

#include "storage/codec.h"
#include "storage/types.h"

namespace irbuf::storage {

/// The paper's page capacity: one tenth of a 4 KB page at 1 byte per
/// compressed posting holds 404 entries (Section 4.2).
inline constexpr uint32_t kDefaultPageSize = 404;

/// One decoded page of an inverted list.
struct Page {
  PageId id;
  /// Postings in frequency-descending order (doc-ascending within ties),
  /// decoded once into SoA form at fetch time.
  PostingBlock block;
  /// max_d w_{d,t} over this page = (highest f_{d,t} on the page) * idf_t.
  /// Stored on the page at database creation time, as Section 3.3 requires,
  /// so the replacement policy can read it without recomputation.
  double max_weight = 0.0;

  /// Highest frequency on the page (first run, by sort order).
  uint32_t MaxFreq() const {
    return block.runs.empty() ? 0 : block.runs.front().freq;
  }
  /// Lowest frequency on the page (last run, by sort order).
  uint32_t MinFreq() const {
    return block.runs.empty() ? 0 : block.runs.back().freq;
  }

  /// Compatibility accessor: materializes the AoS postings view by value
  /// (no lazy cache — frames are shared across threads in irbuf::serve,
  /// and the hot path never calls this).
  std::vector<Posting> MaterializePostings() const {
    return block.ToPostings();
  }

  /// Compatibility mutator for tests and builders that assemble pages
  /// from AoS postings.
  void SetPostings(const std::vector<Posting>& postings) {
    block.FromPostings(postings);
  }
};

/// Validates the frequency-sorted invariant of a postings run:
/// freq non-increasing, doc strictly increasing within equal freq.
bool IsFrequencySorted(const std::vector<Posting>& postings);
bool IsFrequencySorted(const PostingBlock& block);

/// Validates the document-ordered invariant: doc strictly increasing.
bool IsDocumentOrdered(const std::vector<Posting>& postings);
bool IsDocumentOrdered(const PostingBlock& block);

}  // namespace irbuf::storage

#endif  // IRBUF_STORAGE_PAGE_H_
