// Posting-list compression for frequency-sorted inverted files, after
// Persin, Zobel & Sacks-Davis [PZSD96]: within a page, postings are grouped
// into runs of equal frequency; each run stores the frequency once and
// delta-encodes the ascending document ids, all as variable-byte integers.
// The paper reports ~6 bytes -> ~1 byte per posting with this scheme.

#ifndef IRBUF_STORAGE_CODEC_H_
#define IRBUF_STORAGE_CODEC_H_

#include <cstdint>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace irbuf::storage {

/// Appends the variable-byte encoding of `value` to `out` (7 bits per byte,
/// high bit set on the terminating byte).
void VByteEncode(uint32_t value, std::vector<uint8_t>* out);

/// Decodes one variable-byte integer starting at (*pos); advances *pos.
/// Returns false on truncated input.
bool VByteDecode(const std::vector<uint8_t>& in, size_t* pos,
                 uint32_t* value);

/// Encodes a frequency-sorted postings run into a compact byte image.
/// Layout: vbyte(count), then for each equal-frequency run:
/// vbyte(freq), vbyte(run_length), vbyte(first_doc), vbyte(gap)...
/// Postings must satisfy IsFrequencySorted().
std::vector<uint8_t> EncodePostings(const std::vector<Posting>& postings);

/// Decodes a byte image produced by EncodePostings.
Result<std::vector<Posting>> DecodePostings(const std::vector<uint8_t>& in);

}  // namespace irbuf::storage

#endif  // IRBUF_STORAGE_CODEC_H_
