// Posting-list compression for frequency-sorted inverted files, after
// Persin, Zobel & Sacks-Davis [PZSD96]: within a page, postings are grouped
// into runs of equal frequency; each run stores the frequency once and
// delta-encodes the ascending document ids, all as variable-byte integers.
// The paper reports ~6 bytes -> ~1 byte per posting with this scheme.
//
// Two decode paths share the one on-disk format (images and CRCs are
// byte-identical whichever path reads them):
//
//  * DecodePostings — the original scalar path, one vbyte at a time into
//    a fresh AoS std::vector<Posting>. Kept for cold callers (index
//    load/validation, tests) and as the `legacy/` side of the hot-path
//    A/B benches for one release cycle.
//  * DecodePostingsInto — the hot path: decodes into a caller-owned,
//    reusable struct-of-arrays PostingBlock. Gap bytes are consumed in
//    bulk (16 at a time under SSE4.1, 8 at a time portably — at ~1 byte
//    per compressed posting almost every gap is a single byte) and the
//    delta-decoded doc gaps are prefix-summed in a tight loop. Zero
//    allocations at steady state: the block's buffers are reused across
//    pages once they reach the high-water capacity.

#ifndef IRBUF_STORAGE_CODEC_H_
#define IRBUF_STORAGE_CODEC_H_

#include <cstdint>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace irbuf::storage {

/// Appends the variable-byte encoding of `value` to `out` (7 bits per byte,
/// high bit set on the terminating byte).
void VByteEncode(uint32_t value, std::vector<uint8_t>* out);

/// Decodes one variable-byte integer starting at (*pos); advances *pos.
/// Returns false on truncated input.
bool VByteDecode(const std::vector<uint8_t>& in, size_t* pos,
                 uint32_t* value);

/// Encodes a frequency-sorted postings run into a compact byte image.
/// Layout: vbyte(count), then for each equal-frequency run:
/// vbyte(freq), vbyte(run_length), vbyte(first_doc), vbyte(gap)...
/// Postings must satisfy IsFrequencySorted().
std::vector<uint8_t> EncodePostings(const std::vector<Posting>& postings);

/// Decodes a byte image produced by EncodePostings (legacy scalar path).
Result<std::vector<Posting>> DecodePostings(const std::vector<uint8_t>& in);

/// One equal-frequency run inside a PostingBlock: postings
/// [begin, end) of the block all have frequency `freq`.
struct PostingRun {
  uint32_t freq = 0;
  uint32_t begin = 0;
  uint32_t end = 0;

  bool operator==(const PostingRun&) const = default;
};

/// Struct-of-arrays decoded page: parallel doc_ids[] / freqs[] plus the
/// equal-frequency run extents the evaluators' threshold logic operates
/// on (within a run every posting shares f_{d,t}, so insert/add/drop
/// decisions and the hoisted w_{d,t} * w_{q,t} product are per-run, not
/// per-posting). Buffers keep their capacity across Clear(), so a block
/// owned by a buffer-pool frame stops allocating once it has seen a
/// full-sized page.
struct PostingBlock {
  std::vector<DocId> doc_ids;
  std::vector<uint32_t> freqs;
  std::vector<PostingRun> runs;

  size_t size() const { return doc_ids.size(); }
  bool empty() const { return doc_ids.empty(); }

  /// Empties the block, keeping buffer capacity.
  void Clear() {
    doc_ids.clear();
    freqs.clear();
    runs.clear();
  }

  /// Rebuilds the block from AoS postings (must be run-groupable, i.e.
  /// consecutive equal frequencies — both physical list orders qualify).
  void FromPostings(const std::vector<Posting>& postings);

  /// Materializes the AoS view (compatibility path for cold callers).
  std::vector<Posting> ToPostings() const;

  bool operator==(const PostingBlock&) const = default;
};

/// Decodes a byte image produced by EncodePostings into `*out`,
/// reusing its buffers. Malformed images (truncation, corrupt run
/// lengths, over-long vbytes, trailing bytes) fail with a typed
/// kCorrupted status — never a silent misdecode.
Status DecodePostingsInto(const std::vector<uint8_t>& in,
                          PostingBlock* out);

}  // namespace irbuf::storage

#endif  // IRBUF_STORAGE_CODEC_H_
