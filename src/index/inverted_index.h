// The frequency-sorted inverted index: lexicon + paged inverted files on
// the simulated disk + the BAF conversion table + memory-resident document
// vector lengths W_d (Equation 2).

#ifndef IRBUF_INDEX_INVERTED_INDEX_H_
#define IRBUF_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "index/conversion_table.h"
#include "index/lexicon.h"
#include "storage/simulated_disk.h"

namespace irbuf::index {

/// Physical within-list ordering (mirrors IndexBuilderOptions; duplicated
/// here to avoid a circular include with the builder).
enum class IndexListOrder {
  kFrequencySorted,
  kDocumentOrdered,
};

/// An immutable, fully built index. Construct via IndexBuilder.
class InvertedIndex {
 public:
  InvertedIndex(Lexicon lexicon, std::unique_ptr<storage::SimulatedDisk> disk,
                ConversionTable conversion_table,
                std::vector<double> doc_norms,
                IndexListOrder order = IndexListOrder::kFrequencySorted)
      : lexicon_(std::move(lexicon)),
        disk_(std::move(disk)),
        conversion_table_(std::move(conversion_table)),
        doc_norms_(std::move(doc_norms)),
        order_(order) {}

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  const Lexicon& lexicon() const { return lexicon_; }
  const storage::SimulatedDisk& disk() const { return *disk_; }
  const ConversionTable& conversion_table() const {
    return conversion_table_;
  }

  /// Number of documents N in the collection.
  uint32_t num_docs() const {
    return static_cast<uint32_t>(doc_norms_.size());
  }

  /// Document vector length W_d (Equation 2).
  double doc_norm(DocId d) const { return doc_norms_[d]; }

  /// Total pages across all inverted lists.
  uint64_t total_pages() const { return disk_->total_pages(); }

  /// Physical ordering of every inverted list in this index.
  IndexListOrder order() const { return order_; }

 private:
  Lexicon lexicon_;
  std::unique_ptr<storage::SimulatedDisk> disk_;
  ConversionTable conversion_table_;
  std::vector<double> doc_norms_;
  IndexListOrder order_ = IndexListOrder::kFrequencySorted;
};

}  // namespace irbuf::index

#endif  // IRBUF_INDEX_INVERTED_INDEX_H_
