// The lexicon: per-term statistics the query evaluators keep in memory.
// The paper requires idf_t and f_max of every term to be memory-resident
// (Sections 3.1 and 3.2.2); page counts are also kept so BAF can reason
// about list lengths without touching the disk.

#ifndef IRBUF_INDEX_LEXICON_H_
#define IRBUF_INDEX_LEXICON_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace irbuf::index {

/// Memory-resident statistics of one term.
struct TermInfo {
  /// Surface form (stemmed); empty for purely synthetic terms.
  std::string text;
  /// Document frequency f_t: number of documents containing the term.
  uint32_t ft = 0;
  /// Highest within-document frequency max_d f_{d,t} (stored separately
  /// with the idf values, per Section 3.1 footnote 3).
  uint32_t fmax = 0;
  /// Number of disk pages in the term's inverted list.
  uint32_t pages = 0;
  /// Inverse document frequency idf_t = log2(N / f_t) (Equation 4).
  double idf = 0.0;
};

/// Maps term text <-> TermId and stores TermInfo for each term.
class Lexicon {
 public:
  Lexicon() = default;

  /// Adds a term (or returns the existing id for `text`). Synthetic terms
  /// may pass an empty string, which always creates a fresh id.
  TermId AddTerm(const std::string& text);

  /// Looks up a term by its (stemmed) text.
  Result<TermId> Find(const std::string& text) const;

  const TermInfo& info(TermId term) const { return terms_[term]; }
  TermInfo& mutable_info(TermId term) { return terms_[term]; }

  size_t size() const { return terms_.size(); }

 private:
  std::vector<TermInfo> terms_;
  std::unordered_map<std::string, TermId> by_text_;
};

}  // namespace irbuf::index

#endif  // IRBUF_INDEX_LEXICON_H_
