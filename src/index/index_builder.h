// Builds a frequency-sorted inverted index. Two ingestion paths:
//
//  * Document path (`AddDocument`): feed per-document term-frequency maps
//    (the output of text::AnalysisPipeline); the builder inverts them.
//    Used by the examples and the text-corpus tests.
//
//  * Streaming term path (`AddTermPostings`): feed one complete inverted
//    list at a time. Used by the synthetic corpus generator, which works
//    term-by-term and never materializes documents; peak memory is one
//    list instead of the whole collection.
//
// Build() finalizes: sorts each list by (freq desc, doc asc), computes
// idf_t, f_max, page counts, per-page max weights, document norms W_d and
// the BAF conversion table.

#ifndef IRBUF_INDEX_INDEX_BUILDER_H_
#define IRBUF_INDEX_INDEX_BUILDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "storage/page.h"
#include "util/status.h"

namespace irbuf::index {

/// Physical ordering of postings within each inverted list.
enum class ListOrder {
  /// f_{d,t} descending, doc ascending within ties — the paper's layout
  /// ([WL93, Per94]); enables the filtering stopping rule.
  kFrequencySorted,
  /// Document id ascending — the traditional layout ([ZMSD92, Bro95]).
  /// Built for the footnote-14 comparison: filtering cannot stop early
  /// on such lists, so evaluators must read them in full.
  kDocumentOrdered,
};

/// Build-time configuration.
struct IndexBuilderOptions {
  /// Postings per page (the paper's scaled value by default).
  uint32_t page_size = storage::kDefaultPageSize;
  /// Number of documents N. Required before streaming AddTermPostings
  /// (idf and norms need N); the document path infers it when left 0.
  uint32_t num_docs = 0;
  /// Within-list ordering (see ListOrder).
  ListOrder order = ListOrder::kFrequencySorted;
};

class IndexBuilder {
 public:
  explicit IndexBuilder(IndexBuilderOptions options);

  /// Document path: registers document `doc`'s term frequencies. Documents
  /// may arrive in any order; doc ids must be dense enough that max+1 is
  /// the collection size.
  Status AddDocument(DocId doc,
                     const std::map<std::string, uint32_t>& term_freqs);

  /// Streaming path: adds the complete inverted list of a new term and
  /// finalizes it immediately. `text` may be empty for synthetic terms.
  /// Returns the assigned TermId. Requires options.num_docs > 0.
  Result<TermId> AddTermPostings(const std::string& text,
                                 std::vector<Posting> postings);

  /// Finalizes and returns the index. The builder is consumed.
  Result<InvertedIndex> Build() &&;

 private:
  Status FinalizeTerm(TermId term, std::vector<Posting> postings);

  IndexBuilderOptions options_;
  Lexicon lexicon_;
  std::unique_ptr<storage::SimulatedDisk> disk_;
  ConversionTable conversion_table_;
  std::vector<double> doc_norm_squares_;
  /// Buffered lists for the document path (term -> postings).
  std::vector<std::vector<Posting>> buffered_;
  uint32_t max_doc_seen_ = 0;
  bool streaming_used_ = false;
  bool consumed_ = false;
};

}  // namespace irbuf::index

#endif  // IRBUF_INDEX_INDEX_BUILDER_H_
