#include "index/conversion_table.h"

#include <cmath>

namespace irbuf::index {

void ConversionTable::AddTerm(TermId term, const Row& row) {
  rows_[term] = row;
}

uint32_t ConversionTable::PagesToProcess(TermId term, double fadd,
                                         uint32_t total_pages,
                                         uint32_t fmax) const {
  // Step 4b of the algorithm skips the whole list when fmax <= fadd.
  if (static_cast<double>(fmax) <= fadd) return 0;
  if (total_pages <= 1) return total_pages;
  auto it = rows_.find(term);
  if (it == rows_.end()) {
    // No row: be conservative and assume the whole list (should not happen
    // for indices built by IndexBuilder).
    return total_pages;
  }
  // Postings with integer f_{d,t} > fadd are processed, i.e. f_{d,t} >
  // floor(fadd); clamp to the table width (beyond it, high-frequency
  // postings essentially never leave the first page).
  double floored = std::floor(fadd);
  uint32_t threshold =
      floored < 0 ? 0
                  : static_cast<uint32_t>(
                        std::min<double>(floored, kMaxThreshold));
  return it->second[threshold];
}

}  // namespace irbuf::index
