#include "index/index_builder.h"

#include <algorithm>
#include <cmath>

#include "util/str.h"

namespace irbuf::index {

IndexBuilder::IndexBuilder(IndexBuilderOptions options)
    : options_(options),
      disk_(std::make_unique<storage::SimulatedDisk>()) {
  if (options_.num_docs > 0) {
    doc_norm_squares_.assign(options_.num_docs, 0.0);
  }
}

Status IndexBuilder::AddDocument(
    DocId doc, const std::map<std::string, uint32_t>& term_freqs) {
  if (consumed_) return Status::FailedPrecondition("builder already consumed");
  if (options_.num_docs > 0 && doc >= options_.num_docs) {
    return Status::OutOfRange(
        StrFormat("doc %u >= declared collection size %u", doc,
                  options_.num_docs));
  }
  max_doc_seen_ = std::max(max_doc_seen_, doc);
  for (const auto& [text, freq] : term_freqs) {
    if (freq == 0) continue;
    TermId id = lexicon_.AddTerm(text);
    if (id >= buffered_.size()) buffered_.resize(id + 1);
    buffered_[id].push_back(Posting{doc, freq});
  }
  return Status::OK();
}

Result<TermId> IndexBuilder::AddTermPostings(const std::string& text,
                                             std::vector<Posting> postings) {
  if (consumed_) return Status::FailedPrecondition("builder already consumed");
  if (options_.num_docs == 0) {
    return Status::FailedPrecondition(
        "streaming ingestion requires IndexBuilderOptions::num_docs");
  }
  if (postings.empty()) {
    return Status::InvalidArgument("empty inverted list");
  }
  for (const Posting& p : postings) {
    if (p.doc >= options_.num_docs) {
      return Status::OutOfRange(
          StrFormat("doc %u >= collection size %u", p.doc,
                    options_.num_docs));
    }
    if (p.freq == 0) {
      return Status::InvalidArgument("posting with zero frequency");
    }
  }
  streaming_used_ = true;
  TermId id = lexicon_.AddTerm(text);
  if (id < buffered_.size() && !buffered_[id].empty()) {
    return Status::AlreadyExists(
        StrFormat("term '%s' already has buffered postings", text.c_str()));
  }
  if (id < buffered_.size() && lexicon_.info(id).pages > 0) {
    return Status::AlreadyExists(
        StrFormat("term '%s' already finalized", text.c_str()));
  }
  if (id >= buffered_.size()) buffered_.resize(id + 1);
  IRBUF_RETURN_NOT_OK(FinalizeTerm(id, std::move(postings)));
  return id;
}

Status IndexBuilder::FinalizeTerm(TermId term,
                                  std::vector<Posting> postings) {
  if (options_.order == ListOrder::kFrequencySorted) {
    // Frequency-sorted order: f_{d,t} descending (primary key), doc id
    // ascending (secondary key) — Section 4.2.
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                if (a.freq != b.freq) return a.freq > b.freq;
                return a.doc < b.doc;
              });
  } else {
    // Traditional document-ordered layout.
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                return a.doc < b.doc;
              });
  }

  const uint32_t num_docs = options_.num_docs;
  const uint32_t ft = static_cast<uint32_t>(postings.size());
  const double idf =
      std::log2(static_cast<double>(num_docs) / static_cast<double>(ft));

  uint32_t fmax = 0;
  for (const Posting& p : postings) fmax = std::max(fmax, p.freq);

  TermInfo& info = lexicon_.mutable_info(term);
  info.ft = ft;
  info.fmax = fmax;
  info.idf = idf;

  // Document norms accumulate w_{d,t}^2 (Equation 2).
  for (const Posting& p : postings) {
    const double w = static_cast<double>(p.freq) * idf;
    doc_norm_squares_[p.doc] += w * w;
  }

  // Paginate and write to the simulated disk. Each page stores its highest
  // term weight for the RAP policy (Section 3.3).
  const uint32_t page_size = options_.page_size;
  uint32_t pages = 0;
  for (size_t start = 0; start < postings.size(); start += page_size) {
    size_t end = std::min(postings.size(), start + page_size);
    std::vector<Posting> page(postings.begin() + start,
                              postings.begin() + end);
    uint32_t page_fmax = 0;
    for (const Posting& p : page) page_fmax = std::max(page_fmax, p.freq);
    double max_weight = static_cast<double>(page_fmax) * idf;
    IRBUF_RETURN_NOT_OK(disk_->AppendPage(term, page, max_weight));
    ++pages;
  }
  info.pages = pages;

  // Conversion-table row for multi-page terms: for each integer threshold
  // T, the number of pages processed when postings with f_{d,t} > T are
  // read (the filtering evaluator's exact stopping rule). Only meaningful
  // for frequency-sorted lists, where that stopping rule exists.
  if (pages > 1 && options_.order == ListOrder::kFrequencySorted) {
    ConversionTable::Row row{};
    for (uint32_t threshold = 0; threshold <= ConversionTable::kMaxThreshold;
         ++threshold) {
      auto first_filtered = std::partition_point(
          postings.begin(), postings.end(),
          [threshold](const Posting& p) { return p.freq > threshold; });
      if (first_filtered == postings.end()) {
        row[threshold] = static_cast<uint16_t>(std::min<uint32_t>(
            pages, UINT16_MAX));
      } else {
        auto idx = static_cast<size_t>(
            std::distance(postings.begin(), first_filtered));
        row[threshold] = static_cast<uint16_t>(std::min<uint64_t>(
            idx / page_size + 1, UINT16_MAX));
      }
    }
    conversion_table_.AddTerm(term, row);
  }
  return Status::OK();
}

Result<InvertedIndex> IndexBuilder::Build() && {
  if (consumed_) return Status::FailedPrecondition("builder already consumed");
  consumed_ = true;

  if (options_.num_docs == 0) {
    options_.num_docs = max_doc_seen_ + 1;
    doc_norm_squares_.assign(options_.num_docs, 0.0);
  } else if (!streaming_used_ && doc_norm_squares_.empty()) {
    doc_norm_squares_.assign(options_.num_docs, 0.0);
  }

  // Finalize all buffered (document-path) terms.
  for (TermId term = 0; term < buffered_.size(); ++term) {
    if (buffered_[term].empty()) continue;
    IRBUF_RETURN_NOT_OK(FinalizeTerm(term, std::move(buffered_[term])));
    buffered_[term].clear();
  }

  std::vector<double> norms(doc_norm_squares_.size());
  for (size_t d = 0; d < norms.size(); ++d) {
    norms[d] = std::sqrt(doc_norm_squares_[d]);
  }
  IndexListOrder order = options_.order == ListOrder::kFrequencySorted
                             ? IndexListOrder::kFrequencySorted
                             : IndexListOrder::kDocumentOrdered;
  return InvertedIndex(std::move(lexicon_), std::move(disk_),
                       std::move(conversion_table_), std::move(norms),
                       order);
}

}  // namespace irbuf::index
