#include "index/forward_index.h"

#include <algorithm>

namespace irbuf::index {

Result<ForwardIndex> ForwardIndex::FromInvertedIndex(
    const InvertedIndex& index) {
  const uint32_t num_docs = index.num_docs();

  // Pass 1: per-document term counts -> CSR offsets.
  std::vector<size_t> counts(num_docs + 1, 0);
  storage::Page page;
  for (TermId t = 0; t < index.lexicon().size(); ++t) {
    for (uint32_t p = 0; p < index.lexicon().info(t).pages; ++p) {
      IRBUF_RETURN_NOT_OK(index.disk().ReadPage(PageId{t, p}, &page));
      for (const DocId doc : page.block.doc_ids) {
        ++counts[doc + 1];
      }
    }
  }
  std::vector<size_t> offsets(num_docs + 1, 0);
  for (uint32_t d = 0; d < num_docs; ++d) {
    offsets[d + 1] = offsets[d] + counts[d + 1];
  }

  // Pass 2: scatter entries into place.
  std::vector<ForwardPosting> entries(offsets[num_docs]);
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (TermId t = 0; t < index.lexicon().size(); ++t) {
    for (uint32_t p = 0; p < index.lexicon().info(t).pages; ++p) {
      IRBUF_RETURN_NOT_OK(index.disk().ReadPage(PageId{t, p}, &page));
      const storage::PostingBlock& block = page.block;
      for (size_t i = 0; i < block.size(); ++i) {
        entries[cursor[block.doc_ids[i]]++] =
            ForwardPosting{t, block.freqs[i]};
      }
    }
  }
  // Term ids arrive in ascending order (lists are scanned t = 0, 1, ...),
  // so each document's slice is already sorted by term.
  return ForwardIndex(std::move(offsets), std::move(entries));
}

}  // namespace irbuf::index
