// The BAF conversion table (Section 3.2.2): for each multi-page term and
// each integer addition-threshold value, the number of pages the filtering
// evaluator would process. Built once at index-construction time and kept
// in memory; single-page terms need no entry (footnote 6 — in WSJ only
// 6,060 of 167,017 terms have more than one page, so the table is ~120 KB).

#ifndef IRBUF_INDEX_CONVERSION_TABLE_H_
#define IRBUF_INDEX_CONVERSION_TABLE_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/types.h"

namespace irbuf::index {

/// Lookup table fadd -> pages-to-process.
class ConversionTable {
 public:
  /// Thresholds above this are clamped; the paper observes fadd is rarely
  /// above 10 and postings with f_{d,t} > 10 rarely leave the first page.
  static constexpr uint32_t kMaxThreshold = 10;

  /// Per-term row: entry T is the number of pages processed when the
  /// integer part of fadd equals T (postings with f_{d,t} > T are read).
  using Row = std::array<uint16_t, kMaxThreshold + 1>;

  /// Registers the row of a multi-page term.
  void AddTerm(TermId term, const Row& row);

  /// Estimated pages processed for `term` given a real-valued `fadd`.
  /// `total_pages` and `fmax` come from the lexicon. Matches the
  /// evaluator's stopping rule exactly for thresholds <= kMaxThreshold.
  uint32_t PagesToProcess(TermId term, double fadd, uint32_t total_pages,
                          uint32_t fmax) const;

  size_t num_entries() const { return rows_.size(); }

  /// All rows, for persistence and introspection.
  const std::unordered_map<TermId, Row>& rows() const { return rows_; }

  /// Approximate memory footprint, for comparison with the paper's
  /// 121,200-byte estimate.
  size_t ApproxBytes() const { return rows_.size() * sizeof(Row); }

 private:
  std::unordered_map<TermId, Row> rows_;
};

}  // namespace irbuf::index

#endif  // IRBUF_INDEX_CONVERSION_TABLE_H_
