// The forward index: document -> (term, f_{d,t}) pairs, the inverse of
// the inverted index. Needed by relevance feedback (selecting expansion
// terms from the top-ranked documents), which the paper names as the
// workload generator for future refinement studies.
//
// Built by inverting a finished InvertedIndex. Optional: costs roughly
// 8 bytes per posting, so callers enable it only when feedback is used.

#ifndef IRBUF_INDEX_FORWARD_INDEX_H_
#define IRBUF_INDEX_FORWARD_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "index/inverted_index.h"
#include "util/status.h"

namespace irbuf::index {

/// One entry of a document's term vector.
struct ForwardPosting {
  TermId term = 0;
  uint32_t freq = 0;

  bool operator==(const ForwardPosting&) const = default;
};

/// Immutable doc -> terms map.
class ForwardIndex {
 public:
  /// Builds by scanning every inverted list of `index` (bypassing the
  /// buffer manager — construction is an offline step, not a query).
  static Result<ForwardIndex> FromInvertedIndex(
      const InvertedIndex& index);

  /// The term vector of `doc`, sorted by term id ascending.
  std::span<const ForwardPosting> TermsOf(DocId doc) const {
    size_t begin = offsets_[doc];
    size_t end = offsets_[doc + 1];
    return std::span<const ForwardPosting>(entries_.data() + begin,
                                           end - begin);
  }

  uint32_t num_docs() const {
    return static_cast<uint32_t>(offsets_.size() - 1);
  }
  uint64_t num_entries() const { return entries_.size(); }

 private:
  ForwardIndex(std::vector<size_t> offsets,
               std::vector<ForwardPosting> entries)
      : offsets_(std::move(offsets)), entries_(std::move(entries)) {}

  /// CSR layout: entries of doc d live in
  /// entries_[offsets_[d], offsets_[d+1]).
  std::vector<size_t> offsets_;
  std::vector<ForwardPosting> entries_;
};

}  // namespace irbuf::index

#endif  // IRBUF_INDEX_FORWARD_INDEX_H_
