// Index persistence: a compact binary format holding the lexicon, the
// compressed inverted files, the conversion table and the document norms.
// Loading decodes every page once for validation, then serves the stored
// images directly. Used by applications that want to build once and query
// many times, and by the bench harness to share one generated corpus
// across binaries.

#ifndef IRBUF_INDEX_INDEX_IO_H_
#define IRBUF_INDEX_INDEX_IO_H_

#include <string>

#include "index/inverted_index.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace irbuf::index {

/// Format version written by SaveIndex. v2 added the list-order field.
inline constexpr uint32_t kIndexFormatVersion = 2;

/// Writes `index` to `path` (overwrites).
Status SaveIndex(const InvertedIndex& index, const std::string& path);

/// Reads an index previously written by SaveIndex.
Result<InvertedIndex> LoadIndex(const std::string& path);

/// Stream variants, so composite formats (corpus files) can embed an
/// index section.
Status WriteIndex(const InvertedIndex& index, BinaryWriter* writer);
Result<InvertedIndex> ReadIndex(BinaryReader* reader);

}  // namespace irbuf::index

#endif  // IRBUF_INDEX_INDEX_IO_H_
