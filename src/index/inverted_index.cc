#include "index/inverted_index.h"

// InvertedIndex is header-only today; this translation unit anchors the
// library target and is the place for future out-of-line definitions.
