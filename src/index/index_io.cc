#include "index/index_io.h"

#include <memory>

#include "util/str.h"

namespace irbuf::index {

namespace {

constexpr uint32_t kIndexMagic = 0x46425249;  // "IRBF".

}  // namespace

Status WriteIndex(const InvertedIndex& index, BinaryWriter* writer) {
  IRBUF_RETURN_NOT_OK(writer->WriteU32(kIndexMagic));
  IRBUF_RETURN_NOT_OK(writer->WriteU32(kIndexFormatVersion));
  IRBUF_RETURN_NOT_OK(writer->WriteU32(
      index.order() == IndexListOrder::kFrequencySorted ? 0 : 1));
  IRBUF_RETURN_NOT_OK(writer->WriteU32(index.num_docs()));

  // Lexicon.
  const Lexicon& lexicon = index.lexicon();
  IRBUF_RETURN_NOT_OK(
      writer->WriteU32(static_cast<uint32_t>(lexicon.size())));
  for (TermId t = 0; t < lexicon.size(); ++t) {
    const TermInfo& info = lexicon.info(t);
    IRBUF_RETURN_NOT_OK(writer->WriteString(info.text));
    IRBUF_RETURN_NOT_OK(writer->WriteU32(info.ft));
    IRBUF_RETURN_NOT_OK(writer->WriteU32(info.fmax));
    IRBUF_RETURN_NOT_OK(writer->WriteU32(info.pages));
    IRBUF_RETURN_NOT_OK(writer->WriteDouble(info.idf));
  }

  // Conversion table.
  const auto& rows = index.conversion_table().rows();
  IRBUF_RETURN_NOT_OK(writer->WriteU32(static_cast<uint32_t>(rows.size())));
  for (const auto& [term, row] : rows) {
    IRBUF_RETURN_NOT_OK(writer->WriteU32(term));
    for (uint16_t pages : row) {
      IRBUF_RETURN_NOT_OK(writer->WriteU32(pages));
    }
  }

  // Document norms.
  for (DocId d = 0; d < index.num_docs(); ++d) {
    IRBUF_RETURN_NOT_OK(writer->WriteDouble(index.doc_norm(d)));
  }

  // Inverted files (compressed page images).
  const storage::SimulatedDisk& disk = index.disk();
  for (TermId t = 0; t < lexicon.size(); ++t) {
    uint32_t pages = disk.NumPages(t);
    IRBUF_RETURN_NOT_OK(writer->WriteU32(pages));
    for (uint32_t p = 0; p < pages; ++p) {
      PageId id{t, p};
      IRBUF_RETURN_NOT_OK(writer->WriteDouble(disk.PageMaxWeight(id)));
      Result<const std::vector<uint8_t>*> image = disk.PageImage(id);
      if (!image.ok()) return image.status();
      IRBUF_RETURN_NOT_OK(writer->WriteBytes(*image.value()));
    }
  }
  return Status::OK();
}

Status SaveIndex(const InvertedIndex& index, const std::string& path) {
  Result<BinaryWriter> writer = BinaryWriter::Open(path);
  if (!writer.ok()) return writer.status();
  IRBUF_RETURN_NOT_OK(WriteIndex(index, &writer.value()));
  return writer.value().Close();
}

Result<InvertedIndex> ReadIndex(BinaryReader* reader) {
  uint32_t magic = 0, version = 0, num_docs = 0, num_terms = 0;
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&magic));
  if (magic != kIndexMagic) {
    return Status::InvalidArgument("not an irbuf index file");
  }
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&version));
  if (version != kIndexFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported index format version %u", version));
  }
  uint32_t order_tag = 0;
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&order_tag));
  if (order_tag > 1) {
    return Status::InvalidArgument("corrupt list-order tag");
  }
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&num_docs));
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&num_terms));

  Lexicon lexicon;
  for (TermId t = 0; t < num_terms; ++t) {
    std::string text;
    IRBUF_RETURN_NOT_OK(reader->ReadString(&text));
    TermId id = lexicon.AddTerm(text);
    if (id != t) {
      return Status::IOError("duplicate term text in index file");
    }
    TermInfo& info = lexicon.mutable_info(id);
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&info.ft));
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&info.fmax));
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&info.pages));
    IRBUF_RETURN_NOT_OK(reader->ReadDouble(&info.idf));
  }

  ConversionTable table;
  uint32_t num_rows = 0;
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&num_rows));
  for (uint32_t i = 0; i < num_rows; ++i) {
    uint32_t term = 0;
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&term));
    ConversionTable::Row row{};
    for (size_t j = 0; j < row.size(); ++j) {
      uint32_t pages = 0;
      IRBUF_RETURN_NOT_OK(reader->ReadU32(&pages));
      row[j] = static_cast<uint16_t>(pages);
    }
    table.AddTerm(term, row);
  }

  std::vector<double> norms(num_docs);
  for (DocId d = 0; d < num_docs; ++d) {
    IRBUF_RETURN_NOT_OK(reader->ReadDouble(&norms[d]));
  }

  auto disk = std::make_unique<storage::SimulatedDisk>();
  for (TermId t = 0; t < num_terms; ++t) {
    uint32_t pages = 0;
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&pages));
    if (pages != lexicon.info(t).pages) {
      return Status::IOError(
          StrFormat("page count mismatch for term %u", t));
    }
    for (uint32_t p = 0; p < pages; ++p) {
      double max_weight = 0.0;
      std::vector<uint8_t> image;
      IRBUF_RETURN_NOT_OK(reader->ReadDouble(&max_weight));
      IRBUF_RETURN_NOT_OK(reader->ReadBytes(&image));
      IRBUF_RETURN_NOT_OK(
          disk->AppendEncodedPage(t, std::move(image), max_weight));
    }
  }
  return InvertedIndex(std::move(lexicon), std::move(disk),
                       std::move(table), std::move(norms),
                       order_tag == 0 ? IndexListOrder::kFrequencySorted
                                      : IndexListOrder::kDocumentOrdered);
}

Result<InvertedIndex> LoadIndex(const std::string& path) {
  Result<BinaryReader> reader = BinaryReader::Open(path);
  if (!reader.ok()) return reader.status();
  return ReadIndex(&reader.value());
}

}  // namespace irbuf::index
