#include "index/lexicon.h"

#include "util/str.h"

namespace irbuf::index {

TermId Lexicon::AddTerm(const std::string& text) {
  if (!text.empty()) {
    auto it = by_text_.find(text);
    if (it != by_text_.end()) return it->second;
  }
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(TermInfo{});
  terms_.back().text = text;
  if (!text.empty()) by_text_.emplace(text, id);
  return id;
}

Result<TermId> Lexicon::Find(const std::string& text) const {
  auto it = by_text_.find(text);
  if (it == by_text_.end()) {
    return Status::NotFound(StrFormat("term '%s' not in lexicon",
                                      text.c_str()));
  }
  return it->second;
}

}  // namespace irbuf::index
