#include "ir/refinement_session.h"

namespace irbuf::ir {

void RefinementSession::AddText(const std::string& text,
                                const text::AnalysisPipeline& pipeline) {
  core::Query parsed = core::Query::Parse(text, pipeline,
                                          system_->index().lexicon());
  for (const core::QueryTerm& qt : parsed.terms()) {
    query_.AddTerm(qt.term, qt.fq);
  }
}

Result<SessionStep> RefinementSession::Submit() {
  Result<core::EvalResult> result = system_->Search(query_);
  if (!result.ok()) return result.status();
  SessionStep step;
  step.query = query_;
  step.top_docs = std::move(result.value().top_docs);
  step.disk_reads = result.value().disk_reads;
  step.postings_processed = result.value().postings_processed;
  step.accumulators = result.value().accumulators;
  history_.push_back(step);
  return step;
}

uint64_t RefinementSession::total_disk_reads() const {
  uint64_t total = 0;
  for (const SessionStep& step : history_) total += step.disk_reads;
  return total;
}

}  // namespace irbuf::ir
