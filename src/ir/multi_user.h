// Multi-user refinement workloads (the paper's Section 3.3 future-work
// sketch, implemented): several users run their refinement sequences
// concurrently over one shared buffer pool, interleaved round-robin.
//
// For ranking-aware replacement the paper outlines two options; both are
// supported here:
//  * per-query RAP (shared_context = off): the replacement value uses
//    only the query currently being evaluated, so other users' hot pages
//    look worthless;
//  * shared-context RAP (shared_context = on): the weights of all other
//    active queries are merged in (max w_{q,t} per term), so pages any
//    active user still values are retained.
//
// The paper also conjectures that "users may benefit from pages cached in
// buffers for other users" — measurable here by giving users overlapping
// topics.

#ifndef IRBUF_IR_MULTI_USER_H_
#define IRBUF_IR_MULTI_USER_H_

#include <cstdint>
#include <vector>

#include "buffer/policy_factory.h"
#include "index/inverted_index.h"
#include "util/status.h"
#include "workload/refinement.h"

namespace irbuf::ir {

/// Configuration of a multi-user run.
struct MultiUserOptions {
  size_t buffer_pages = 200;
  buffer::PolicyKind policy = buffer::PolicyKind::kLru;
  /// false = DF, true = BAF for every user.
  bool buffer_aware = false;
  /// Merge the other users' query weights into the replacement context
  /// (only meaningful for ranking-aware policies).
  bool shared_context = false;
  double c_ins = 0.07;
  double c_add = 0.002;
  uint32_t top_n = 20;
};

/// Per-user measurements.
struct UserResult {
  uint64_t disk_reads = 0;
  uint64_t pages_processed = 0;
  size_t steps_run = 0;
};

/// Whole-run measurements.
struct MultiUserResult {
  std::vector<UserResult> users;
  uint64_t total_disk_reads = 0;
  uint64_t total_fetches = 0;
  uint64_t total_hits = 0;

  double HitRate() const {
    return total_fetches == 0
               ? 0.0
               : static_cast<double>(total_hits) /
                     static_cast<double>(total_fetches);
  }
};

/// Runs one refinement sequence per user over a single cold shared pool,
/// interleaving steps round-robin (user 0 step 0, user 1 step 0, ...,
/// user 0 step 1, ...). Users whose sequences are exhausted drop out.
Result<MultiUserResult> RunMultiUserWorkload(
    const index::InvertedIndex& index,
    const std::vector<workload::RefinementSequence>& sequences,
    const MultiUserOptions& options);

}  // namespace irbuf::ir

#endif  // IRBUF_IR_MULTI_USER_H_
