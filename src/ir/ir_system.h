// IrSystem: the one-stop public facade. Wraps an inverted index with a
// buffer pool and a filtering evaluator, so applications can search and
// refine without wiring the substrates together themselves.
//
//   auto corpus = corpus::GenerateSyntheticCorpus({.scale = 0.01});
//   ir::IrSystemOptions opts;
//   opts.buffer_pages = 100;
//   opts.policy = buffer::PolicyKind::kRap;
//   opts.eval.buffer_aware = true;               // BAF
//   ir::IrSystem system(&corpus.value()->index(), opts);
//   auto result = system.Search(query);

#ifndef IRBUF_IR_IR_SYSTEM_H_
#define IRBUF_IR_IR_SYSTEM_H_

#include <memory>
#include <string>

#include "buffer/buffer_manager.h"
#include "buffer/policy_factory.h"
#include "core/filtering_evaluator.h"
#include "core/query.h"
#include "index/inverted_index.h"
#include "obs/metrics.h"
#include "obs/query_tracer.h"
#include "text/pipeline.h"
#include "util/status.h"

namespace irbuf::ir {

/// Configuration of an IrSystem instance.
struct IrSystemOptions {
  /// Buffer pool capacity, in pages.
  size_t buffer_pages = 100;
  /// Replacement policy.
  buffer::PolicyKind policy = buffer::PolicyKind::kLru;
  /// Evaluator tuning (DF vs BAF, thresholds, answer size).
  core::EvalOptions eval;
};

/// A ready-to-query retrieval system over a prebuilt index.
class IrSystem {
 public:
  /// The index must outlive the system.
  IrSystem(const index::InvertedIndex* index, IrSystemOptions options);

  /// Evaluates a query. Buffer contents persist across calls (that is the
  /// point); call FlushBuffers() to simulate a cold start.
  Result<core::EvalResult> Search(const core::Query& query);

  /// Parses free text through `pipeline` and evaluates it.
  Result<core::EvalResult> Search(const std::string& text,
                                  const text::AnalysisPipeline& pipeline);

  /// Empties the buffer pool (the paper does this between sequences).
  void FlushBuffers() { buffers_->Flush(); }

  /// Installs (or clears, with nullptr) a tracer on both the evaluator
  /// and the buffer pool, so one timeline carries evaluation events and
  /// fetch/eviction events. Tracing never changes results.
  void SetTracer(obs::QueryTracer* tracer);

  /// Binds the system's buffer pool and disk to `registry` (see
  /// BufferManager::BindMetrics / SimulatedDisk::BindMetrics); nullptr
  /// unbinds both.
  void BindMetrics(obs::MetricsRegistry* registry);

  const buffer::BufferManager& buffers() const { return *buffers_; }
  buffer::BufferManager* mutable_buffers() { return buffers_.get(); }
  const index::InvertedIndex& index() const { return *index_; }
  const IrSystemOptions& options() const { return options_; }

 private:
  const index::InvertedIndex* index_;
  IrSystemOptions options_;
  std::unique_ptr<buffer::BufferManager> buffers_;
  core::FilteringEvaluator evaluator_;
};

}  // namespace irbuf::ir

#endif  // IRBUF_IR_IR_SYSTEM_H_
