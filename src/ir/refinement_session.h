// RefinementSession: the paper's user-interaction model as an API. A
// session holds the evolving query; the user adds or removes terms and
// resubmits (Section 2.1), and the session evaluates against a persistent
// buffer pool — which is exactly the setting where buffer-aware
// evaluation and ranking-aware replacement pay off.

#ifndef IRBUF_IR_REFINEMENT_SESSION_H_
#define IRBUF_IR_REFINEMENT_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query.h"
#include "ir/ir_system.h"
#include "text/pipeline.h"

namespace irbuf::ir {

/// Measurements of one submission within a session.
struct SessionStep {
  core::Query query;
  std::vector<core::ScoredDoc> top_docs;
  uint64_t disk_reads = 0;
  uint64_t postings_processed = 0;
  uint64_t accumulators = 0;
};

/// An interactive refinement session over an IrSystem.
class RefinementSession {
 public:
  /// The system must outlive the session.
  explicit RefinementSession(IrSystem* system) : system_(system) {}

  /// Edits the pending query (no evaluation happens until Submit).
  void AddTerm(TermId term, uint32_t fq = 1) { query_.AddTerm(term, fq); }
  bool RemoveTerm(TermId term) { return query_.RemoveTerm(term); }

  /// Parses `text` with `pipeline` and adds the resolved terms.
  void AddText(const std::string& text,
               const text::AnalysisPipeline& pipeline);

  /// Evaluates the current query; buffers persist across submissions.
  Result<SessionStep> Submit();

  const core::Query& query() const { return query_; }
  const std::vector<SessionStep>& history() const { return history_; }

  /// Total disk reads across every submission so far.
  uint64_t total_disk_reads() const;

 private:
  IrSystem* system_;
  core::Query query_;
  std::vector<SessionStep> history_;
};

}  // namespace irbuf::ir

#endif  // IRBUF_IR_REFINEMENT_SESSION_H_
