#include "ir/multi_user.h"

#include <algorithm>

#include "buffer/buffer_manager.h"
#include "core/filtering_evaluator.h"
#include "core/scorer.h"

namespace irbuf::ir {

Result<MultiUserResult> RunMultiUserWorkload(
    const index::InvertedIndex& index,
    const std::vector<workload::RefinementSequence>& sequences,
    const MultiUserOptions& options) {
  core::EvalOptions eval;
  eval.c_ins = options.c_ins;
  eval.c_add = options.c_add;
  eval.top_n = options.top_n;
  eval.buffer_aware = options.buffer_aware;
  eval.record_trace = false;
  core::FilteringEvaluator evaluator(&index, eval);

  buffer::BufferManager buffers(&index.disk(), options.buffer_pages,
                                buffer::MakePolicy(options.policy));

  MultiUserResult result;
  result.users.resize(sequences.size());

  size_t max_steps = 0;
  for (const workload::RefinementSequence& seq : sequences) {
    max_steps = std::max(max_steps, seq.steps.size());
  }

  for (size_t step = 0; step < max_steps; ++step) {
    for (size_t user = 0; user < sequences.size(); ++user) {
      if (step >= sequences[user].steps.size()) continue;

      if (options.shared_context) {
        // The replacement context must keep valuing what *other* active
        // users are working with (max w_{q,t} per shared term).
        buffer::QueryContext shared;
        for (size_t other = 0; other < sequences.size(); ++other) {
          if (other == user) continue;
          size_t other_step =
              std::min(step, sequences[other].steps.size() - 1);
          shared.MergeMax(core::BuildQueryContext(
              sequences[other].steps[other_step].query, index.lexicon()));
        }
        buffers.SetSharedContext(std::move(shared));
      }

      const uint64_t misses_before = buffers.stats().misses;
      const uint64_t fetches_before = buffers.stats().fetches;
      Result<core::EvalResult> eval_result =
          evaluator.Evaluate(sequences[user].steps[step].query, &buffers);
      if (!eval_result.ok()) return eval_result.status();

      UserResult& ur = result.users[user];
      ur.disk_reads += buffers.stats().misses - misses_before;
      ur.pages_processed += buffers.stats().fetches - fetches_before;
      ++ur.steps_run;
    }
  }

  result.total_fetches = buffers.stats().fetches;
  result.total_hits = buffers.stats().hits;
  for (const UserResult& ur : result.users) {
    result.total_disk_reads += ur.disk_reads;
  }
  return result;
}

}  // namespace irbuf::ir
