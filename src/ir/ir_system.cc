#include "ir/ir_system.h"

namespace irbuf::ir {

IrSystem::IrSystem(const index::InvertedIndex* index, IrSystemOptions options)
    : index_(index),
      options_(options),
      buffers_(std::make_unique<buffer::BufferManager>(
          &index->disk(), options.buffer_pages,
          buffer::MakePolicy(options.policy))),
      evaluator_(index, options.eval) {}

Result<core::EvalResult> IrSystem::Search(const core::Query& query) {
  return evaluator_.Evaluate(query, buffers_.get());
}

Result<core::EvalResult> IrSystem::Search(
    const std::string& text, const text::AnalysisPipeline& pipeline) {
  return Search(core::Query::Parse(text, pipeline, index_->lexicon()));
}

void IrSystem::SetTracer(obs::QueryTracer* tracer) {
  buffers_->SetTracer(tracer);
  // The evaluator carries its options by value; rebuild it with the
  // tracer installed (construction is cheap — two pointers).
  core::EvalOptions eval = options_.eval;
  eval.tracer = tracer;
  options_.eval = eval;
  evaluator_ = core::FilteringEvaluator(index_, eval);
}

void IrSystem::BindMetrics(obs::MetricsRegistry* registry) {
  buffers_->BindMetrics(registry);
  index_->disk().BindMetrics(registry);
}

}  // namespace irbuf::ir
