#include "ir/experiment.h"

#include <algorithm>
#include <unordered_set>

#include "buffer/buffer_manager.h"
#include "metrics/effectiveness.h"
#include "obs/json.h"

namespace irbuf::ir {

Result<SequenceRunResult> RunRefinementSequence(
    const index::InvertedIndex& index,
    const workload::RefinementSequence& sequence,
    const std::vector<DocId>& relevant, const SequenceRunOptions& options) {
  core::EvalOptions eval;
  eval.c_ins = options.c_ins;
  eval.c_add = options.c_add;
  eval.top_n = options.top_n;
  eval.buffer_aware = options.buffer_aware;
  eval.record_trace = false;
  eval.tracer = options.tracer;
  core::FilteringEvaluator evaluator(&index, eval);

  buffer::BufferManager buffers(&index.disk(), options.buffer_pages,
                                buffer::MakePolicy(options.policy));
  buffers.SetTracer(options.tracer);
  if (options.metrics != nullptr) {
    buffers.BindMetrics(options.metrics);
    index.disk().BindMetrics(options.metrics);
  }
  if (options.resilience.enabled) buffers.SetResilience(options.resilience);

  SequenceRunResult result;
  double precision_sum = 0.0;
  for (size_t step_index = 0; step_index < sequence.steps.size();
       ++step_index) {
    const workload::RefinementStep& step = sequence.steps[step_index];
    if (options.tracer != nullptr) {
      options.tracer->BeginStep(static_cast<uint32_t>(step_index));
    }
    const buffer::BufferStats pool_before = buffers.stats();
    core::EvalControl control;
    const core::EvalControl* control_ptr = nullptr;
    if (options.deadline_us > 0) {
      control.deadline_us = fault::MonotonicNowUs() + options.deadline_us;
      control_ptr = &control;
    }
    Result<core::EvalResult> eval_result =
        evaluator.Evaluate(step.query, &buffers, control_ptr);
    if (!eval_result.ok()) return eval_result.status();
    core::EvalResult& er = eval_result.value();

    StepResult sr;
    sr.disk_reads = er.disk_reads;
    sr.pages_processed = er.pages_processed;
    sr.postings_processed = er.postings_processed;
    sr.accumulators = er.accumulators;
    const buffer::BufferStats& pool_after = buffers.stats();
    sr.buffer.fetches = pool_after.fetches - pool_before.fetches;
    sr.buffer.hits = pool_after.hits - pool_before.hits;
    sr.buffer.misses = pool_after.misses - pool_before.misses;
    sr.buffer.evictions = pool_after.evictions - pool_before.evictions;
    if (!relevant.empty()) {
      sr.avg_precision = metrics::AveragePrecision(er.top_docs, relevant);
    }
    sr.degraded = er.degraded;
    sr.pages_lost = er.pages_lost;
    sr.quality_bound = er.quality_bound;
    sr.deadline_hit = er.deadline_hit;
    if (er.degraded) ++result.degraded_steps;
    result.total_pages_lost += er.pages_lost;
    sr.top_docs = std::move(er.top_docs);

    result.total_disk_reads += sr.disk_reads;
    result.total_postings_processed += sr.postings_processed;
    result.max_accumulators = std::max(result.max_accumulators,
                                       sr.accumulators);
    precision_sum += sr.avg_precision;
    result.steps.push_back(std::move(sr));
  }
  if (!result.steps.empty()) {
    result.mean_avg_precision =
        precision_sum / static_cast<double>(result.steps.size());
  }
  // The pool dies with this run; leave the registry with final counts but
  // no dangling bindings.
  if (options.metrics != nullptr) index.disk().BindMetrics(nullptr);
  return result;
}

std::string SequenceTelemetryJson(const std::string& label,
                                  const SequenceRunOptions& options,
                                  const SequenceRunResult& result,
                                  const obs::QueryTracer* tracer) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("label").Str(label);
  w.Key("algorithm").Str(options.buffer_aware ? "BAF" : "DF");
  w.Key("policy").Str(buffer::PolicyKindName(options.policy));
  w.Key("buffer_pages").UInt(options.buffer_pages);
  w.Key("c_ins").Num(options.c_ins);
  w.Key("c_add").Num(options.c_add);
  w.Key("total_disk_reads").UInt(result.total_disk_reads);
  w.Key("total_postings").UInt(result.total_postings_processed);
  w.Key("max_accumulators").UInt(result.max_accumulators);
  w.Key("mean_avg_precision").Num(result.mean_avg_precision);
  w.Key("degraded_steps").UInt(result.degraded_steps);
  w.Key("total_pages_lost").UInt(result.total_pages_lost);
  w.Key("steps").BeginArray();
  for (size_t i = 0; i < result.steps.size(); ++i) {
    const StepResult& sr = result.steps[i];
    w.BeginObject();
    w.Key("step").UInt(i);
    w.Key("disk_reads").UInt(sr.disk_reads);
    w.Key("pages_processed").UInt(sr.pages_processed);
    w.Key("postings").UInt(sr.postings_processed);
    w.Key("accumulators").UInt(sr.accumulators);
    w.Key("avg_precision").Num(sr.avg_precision);
    w.Key("fetches").UInt(sr.buffer.fetches);
    w.Key("hits").UInt(sr.buffer.hits);
    w.Key("hit_rate").Num(sr.buffer.HitRate());
    w.Key("evictions").UInt(sr.buffer.evictions);
    if (sr.degraded) {
      w.Key("degraded").Bool(true);
      w.Key("pages_lost").UInt(sr.pages_lost);
      w.Key("quality_bound").Num(sr.quality_bound);
      w.Key("deadline_hit").Bool(sr.deadline_hit);
    }
    if (tracer != nullptr) {
      const uint32_t step = static_cast<uint32_t>(i);
      w.Key("smax_trajectory").BeginArray();
      for (double s : tracer->SmaxTrajectory(step)) w.Num(s);
      w.EndArray();
      w.Key("phase_transitions").BeginArray();
      for (const obs::TraceEvent& e : tracer->events()) {
        if (e.step != step || e.kind != obs::TraceEventKind::kPhase) {
          continue;
        }
        w.BeginObject();
        w.Key("term").UInt(e.term);
        w.Key("transition").Str(e.phase != nullptr ? e.phase : "");
        w.EndObject();
      }
      w.EndArray();
      w.Key("eviction_events").BeginArray();
      for (const obs::TraceEvent& e : tracer->events()) {
        if (e.step != step || e.kind != obs::TraceEventKind::kEvict) {
          continue;
        }
        w.BeginObject();
        w.Key("term").UInt(e.term);
        w.Key("page").UInt(e.page_no);
        w.Key("max_weight").Num(e.a);
        w.Key("value").Num(e.b);
        w.Key("age").UInt(e.n);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

Result<core::EvalResult> RunColdQuery(const index::InvertedIndex& index,
                                      const core::Query& query,
                                      const core::EvalOptions& eval,
                                      buffer::PolicyKind policy,
                                      obs::QueryTracer* tracer) {
  uint64_t pages = std::max<uint64_t>(1, TotalQueryPages(index, query));
  buffer::BufferManager buffers(&index.disk(), pages,
                                buffer::MakePolicy(policy));
  buffers.SetTracer(tracer);
  core::EvalOptions traced_eval = eval;
  traced_eval.tracer = tracer;
  core::FilteringEvaluator evaluator(&index, traced_eval);
  return evaluator.Evaluate(query, &buffers);
}

uint64_t TotalQueryPages(const index::InvertedIndex& index,
                         const core::Query& query) {
  uint64_t total = 0;
  for (const core::QueryTerm& qt : query.terms()) {
    total += index.lexicon().info(qt.term).pages;
  }
  return total;
}

uint64_t SequenceWorkingSetPages(const index::InvertedIndex& index,
                                 const workload::RefinementSequence& seq) {
  std::unordered_set<TermId> terms;
  for (const workload::RefinementStep& step : seq.steps) {
    for (const core::QueryTerm& qt : step.query.terms()) {
      terms.insert(qt.term);
    }
  }
  uint64_t total = 0;
  for (TermId t : terms) total += index.lexicon().info(t).pages;
  return total;
}

}  // namespace irbuf::ir
