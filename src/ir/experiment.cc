#include "ir/experiment.h"

#include <algorithm>
#include <unordered_set>

#include "buffer/buffer_manager.h"
#include "metrics/effectiveness.h"

namespace irbuf::ir {

Result<SequenceRunResult> RunRefinementSequence(
    const index::InvertedIndex& index,
    const workload::RefinementSequence& sequence,
    const std::vector<DocId>& relevant, const SequenceRunOptions& options) {
  core::EvalOptions eval;
  eval.c_ins = options.c_ins;
  eval.c_add = options.c_add;
  eval.top_n = options.top_n;
  eval.buffer_aware = options.buffer_aware;
  eval.record_trace = false;
  core::FilteringEvaluator evaluator(&index, eval);

  buffer::BufferManager buffers(&index.disk(), options.buffer_pages,
                                buffer::MakePolicy(options.policy));

  SequenceRunResult result;
  double precision_sum = 0.0;
  for (const workload::RefinementStep& step : sequence.steps) {
    Result<core::EvalResult> eval_result =
        evaluator.Evaluate(step.query, &buffers);
    if (!eval_result.ok()) return eval_result.status();
    core::EvalResult& er = eval_result.value();

    StepResult sr;
    sr.disk_reads = er.disk_reads;
    sr.pages_processed = er.pages_processed;
    sr.postings_processed = er.postings_processed;
    sr.accumulators = er.accumulators;
    if (!relevant.empty()) {
      sr.avg_precision = metrics::AveragePrecision(er.top_docs, relevant);
    }
    sr.top_docs = std::move(er.top_docs);

    result.total_disk_reads += sr.disk_reads;
    result.total_postings_processed += sr.postings_processed;
    result.max_accumulators = std::max(result.max_accumulators,
                                       sr.accumulators);
    precision_sum += sr.avg_precision;
    result.steps.push_back(std::move(sr));
  }
  if (!result.steps.empty()) {
    result.mean_avg_precision =
        precision_sum / static_cast<double>(result.steps.size());
  }
  return result;
}

Result<core::EvalResult> RunColdQuery(const index::InvertedIndex& index,
                                      const core::Query& query,
                                      const core::EvalOptions& eval,
                                      buffer::PolicyKind policy) {
  uint64_t pages = std::max<uint64_t>(1, TotalQueryPages(index, query));
  buffer::BufferManager buffers(&index.disk(), pages,
                                buffer::MakePolicy(policy));
  core::FilteringEvaluator evaluator(&index, eval);
  return evaluator.Evaluate(query, &buffers);
}

uint64_t TotalQueryPages(const index::InvertedIndex& index,
                         const core::Query& query) {
  uint64_t total = 0;
  for (const core::QueryTerm& qt : query.terms()) {
    total += index.lexicon().info(qt.term).pages;
  }
  return total;
}

uint64_t SequenceWorkingSetPages(const index::InvertedIndex& index,
                                 const workload::RefinementSequence& seq) {
  std::unordered_set<TermId> terms;
  for (const workload::RefinementStep& step : seq.steps) {
    for (const core::QueryTerm& qt : step.query.terms()) {
      terms.insert(qt.term);
    }
  }
  uint64_t total = 0;
  for (TermId t : terms) total += index.lexicon().info(t).pages;
  return total;
}

}  // namespace irbuf::ir
