// The experiment harness shared by the bench binaries and integration
// tests: runs refinement sequences under a chosen (algorithm, replacement
// policy, buffer size) configuration with the paper's methodology —
// buffers cold at the start of each sequence, persistent across the
// refinements within it.

#ifndef IRBUF_IR_EXPERIMENT_H_
#define IRBUF_IR_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "buffer/policy_factory.h"
#include "core/filtering_evaluator.h"
#include "fault/resilient.h"
#include "index/inverted_index.h"
#include "obs/metrics.h"
#include "obs/query_tracer.h"
#include "util/status.h"
#include "workload/refinement.h"

namespace irbuf::ir {

/// Configuration of one sequence run.
struct SequenceRunOptions {
  /// false = DF, true = BAF.
  bool buffer_aware = false;
  buffer::PolicyKind policy = buffer::PolicyKind::kLru;
  size_t buffer_pages = 100;
  /// Persin's tuned constants (Section 4.1); set both to 0 for the safe
  /// full-evaluation baseline.
  double c_ins = 0.07;
  double c_add = 0.002;
  uint32_t top_n = 20;
  /// Optional observability hooks (not owned; must outlive the run).
  /// `tracer` receives the full event timeline, tagged per refinement
  /// step via BeginStep; `metrics` is bound to the run's buffer pool and
  /// the index's disk for the duration of the run. Neither changes any
  /// result or counter.
  obs::QueryTracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Retry/backoff + circuit breaker installed on the run's buffer pool
  /// (the chaos harness and the CLI's --fault-spec runs turn this on).
  /// Disabled by default; a disabled run is byte-identical to one
  /// without the fault layer.
  fault::ResilienceOptions resilience;
  /// Per-query deadline in microseconds (0 = none), applied to every
  /// step's evaluation.
  uint64_t deadline_us = 0;
};

/// Per-refinement measurements.
struct StepResult {
  uint64_t disk_reads = 0;
  uint64_t pages_processed = 0;
  uint64_t postings_processed = 0;
  uint64_t accumulators = 0;
  /// Non-interpolated average precision against the topic's judgments
  /// (0 when no judgments were supplied).
  double avg_precision = 0.0;
  std::vector<core::ScoredDoc> top_docs;
  /// This step's buffer-pool activity (delta snapshot of the pool's
  /// BufferStats across the step; `buffer.misses == disk_reads`).
  buffer::BufferStats buffer;
  /// Degradation accounting copied from the step's EvalResult (all zero
  /// on a fault-free run).
  bool degraded = false;
  uint32_t pages_lost = 0;
  double quality_bound = 0.0;
  bool deadline_hit = false;
};

/// Whole-sequence measurements.
struct SequenceRunResult {
  std::vector<StepResult> steps;
  uint64_t total_disk_reads = 0;
  uint64_t total_postings_processed = 0;
  uint64_t max_accumulators = 0;
  double mean_avg_precision = 0.0;
  /// Steps that returned a degraded (partial) answer.
  uint32_t degraded_steps = 0;
  uint64_t total_pages_lost = 0;
};

/// Runs `sequence` start-to-finish on a cold buffer pool. `relevant` may
/// be empty (effectiveness is then reported as 0).
Result<SequenceRunResult> RunRefinementSequence(
    const index::InvertedIndex& index,
    const workload::RefinementSequence& sequence,
    const std::vector<DocId>& relevant, const SequenceRunOptions& options);

/// Renders one run's telemetry as a single JSON object: configuration,
/// totals, and per step disk reads, hit rate, eviction count, the s_max
/// trajectory and phase-transition / eviction events (the latter only
/// when the run was traced — pass the same tracer given to the run, or
/// nullptr for counters-only output). `label` names the run.
std::string SequenceTelemetryJson(const std::string& label,
                                  const SequenceRunOptions& options,
                                  const SequenceRunResult& result,
                                  const obs::QueryTracer* tracer);

/// Runs one query on a cold pool sized so no replacement ever happens
/// (the single-query setting of Section 5.1.1). A non-null `tracer` is
/// installed on both the evaluator and the pool for the run.
Result<core::EvalResult> RunColdQuery(const index::InvertedIndex& index,
                                      const core::Query& query,
                                      const core::EvalOptions& eval,
                                      buffer::PolicyKind policy =
                                          buffer::PolicyKind::kLru,
                                      obs::QueryTracer* tracer = nullptr);

/// Total pages of the inverted lists of `query`'s terms (the x-axis of
/// the paper's Figure 3).
uint64_t TotalQueryPages(const index::InvertedIndex& index,
                         const core::Query& query);

/// Pages of the union of all terms across all steps of `sequence` — the
/// size at which adding buffers stops helping.
uint64_t SequenceWorkingSetPages(const index::InvertedIndex& index,
                                 const workload::RefinementSequence& seq);

}  // namespace irbuf::ir

#endif  // IRBUF_IR_EXPERIMENT_H_
