// Query-refinement workload construction (Section 5.1.2). Each TREC-like
// topic yields a refinement *sequence* of queries ("refinements"):
//
//   ADD-ONLY — refinement 1 holds the three highest-contribution terms;
//              each later refinement adds the next three.
//   ADD-DROP — terms are added the same way, but every refinement after
//              the first also drops the lowest-contribution term of the
//              previously added group.
//
// The paper also evaluates a collapsed variant of a sequence (Section
// 5.2.2): all refinements but the last merged into one large first query.

#ifndef IRBUF_WORKLOAD_REFINEMENT_H_
#define IRBUF_WORKLOAD_REFINEMENT_H_

#include <string>
#include <vector>

#include "core/query.h"
#include "index/inverted_index.h"
#include "util/status.h"
#include "workload/contribution.h"

namespace irbuf::workload {

enum class RefinementKind { kAddOnly, kAddDrop };

const char* RefinementKindName(RefinementKind kind);

/// One user-submitted refinement.
struct RefinementStep {
  /// The complete query the user resubmits at this step.
  core::Query query;
  std::vector<TermId> added_terms;
  std::vector<TermId> dropped_terms;
};

/// A full refinement sequence derived from one topic.
struct RefinementSequence {
  std::string title;
  RefinementKind kind = RefinementKind::kAddOnly;
  std::vector<RefinementStep> steps;
  /// The contribution ranking the sequence was built from.
  std::vector<RankedTerm> ranking;
};

/// Builds the refinement sequence of `query` (ranking terms internally).
/// `group_size` is the number of terms added per refinement (3 in the
/// paper).
Result<RefinementSequence> BuildRefinementSequence(
    const std::string& title, const core::Query& query,
    const index::InvertedIndex& index, RefinementKind kind,
    uint32_t group_size = 3);

/// Same, but from a precomputed ranking (used when building ADD-ONLY and
/// ADD-DROP from the same topic without ranking twice).
RefinementSequence BuildRefinementSequenceFromRanking(
    const std::string& title, const std::vector<RankedTerm>& ranking,
    RefinementKind kind, uint32_t group_size = 3);

/// The Section 5.2.2 variant: all steps but the last collapsed into one
/// large first query, followed by the original last step.
RefinementSequence CollapseAllButLast(const RefinementSequence& sequence);

}  // namespace irbuf::workload

#endif  // IRBUF_WORKLOAD_REFINEMENT_H_
