#include "workload/feedback.h"

#include <algorithm>
#include <unordered_map>

#include "buffer/buffer_manager.h"
#include "buffer/policy_factory.h"
#include "core/filtering_evaluator.h"

namespace irbuf::workload {

core::Query ExpandWithFeedback(const core::Query& query,
                               const std::vector<core::ScoredDoc>& top_docs,
                               const index::InvertedIndex& index,
                               const index::ForwardIndex& forward,
                               const FeedbackOptions& options) {
  const uint32_t df_cap = static_cast<uint32_t>(
      options.max_df_fraction * static_cast<double>(index.num_docs()));

  // Rocchio positive centroid: accumulate w_{d,t} * idf_t over the
  // feedback documents.
  std::unordered_map<TermId, double> scores;
  const size_t docs =
      std::min<size_t>(options.feedback_docs, top_docs.size());
  for (size_t i = 0; i < docs; ++i) {
    for (const index::ForwardPosting& fp :
         forward.TermsOf(top_docs[i].doc)) {
      const index::TermInfo& info = index.lexicon().info(fp.term);
      if (info.ft > df_cap) continue;  // Too common to discriminate.
      scores[fp.term] +=
          static_cast<double>(fp.freq) * info.idf * info.idf;
    }
  }

  // Highest scores first; existing query terms get an fq bump instead of
  // re-addition.
  std::vector<std::pair<TermId, double>> ranked(scores.begin(),
                                                scores.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  core::Query expanded = query;
  uint32_t added = 0;
  for (const auto& [term, score] : ranked) {
    if (added >= options.terms_per_round) break;
    if (expanded.Contains(term)) {
      if (expanded.FrequencyOf(term) < options.max_fq) {
        expanded.AddTerm(term, 1);  // fq bump, not a new term.
      }
      continue;
    }
    expanded.AddTerm(term, 1);
    ++added;
  }
  return expanded;
}

Result<RefinementSequence> BuildFeedbackSequence(
    const std::string& title, const core::Query& seed,
    const index::InvertedIndex& index, const index::ForwardIndex& forward,
    uint32_t rounds, const FeedbackOptions& options) {
  // Feedback rounds are evaluated on a private scratch pool with the
  // safe configuration, so workload construction is deterministic and
  // does not disturb the caller's buffers.
  core::EvalOptions full;
  full.c_ins = 0.0;
  full.c_add = 0.0;
  full.top_n = std::max<uint32_t>(options.feedback_docs, 20);
  full.record_trace = false;
  core::FilteringEvaluator evaluator(&index, full);

  RefinementSequence sequence;
  sequence.title = title;
  sequence.kind = RefinementKind::kAddOnly;

  core::Query current = seed;
  std::vector<TermId> added_this_round;
  for (const core::QueryTerm& qt : seed.terms()) {
    added_this_round.push_back(qt.term);  // Round 0 "adds" the seed.
  }
  for (uint32_t round = 0; round <= rounds; ++round) {
    RefinementStep step;
    step.query = current;
    step.added_terms = added_this_round;
    sequence.steps.push_back(std::move(step));
    if (round == rounds) break;

    buffer::BufferManager scratch(
        &index.disk(), 64, buffer::MakePolicy(buffer::PolicyKind::kLru));
    Result<core::EvalResult> result = evaluator.Evaluate(current,
                                                         &scratch);
    if (!result.ok()) return result.status();

    core::Query expanded = ExpandWithFeedback(
        current, result.value().top_docs, index, forward, options);
    added_this_round.clear();
    for (const core::QueryTerm& qt : expanded.terms()) {
      if (!current.Contains(qt.term)) added_this_round.push_back(qt.term);
    }
    current = std::move(expanded);
  }
  return sequence;
}

}  // namespace irbuf::workload
