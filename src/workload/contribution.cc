#include "workload/contribution.h"

#include <algorithm>
#include <unordered_map>

#include "buffer/buffer_manager.h"
#include "buffer/policy_factory.h"
#include "core/scorer.h"

namespace irbuf::workload {

Result<std::vector<RankedTerm>> RankTermsByContribution(
    const core::Query& query, const index::InvertedIndex& index,
    uint32_t top_k) {
  // Full evaluation: no filtering, all postings contribute.
  core::EvalOptions full;
  full.c_ins = 0.0;
  full.c_add = 0.0;
  full.top_n = top_k;
  full.record_trace = false;
  core::FilteringEvaluator evaluator(&index, full);

  // Scratch pool; its contents and stats are discarded.
  buffer::BufferManager scratch(&index.disk(), 64,
                                buffer::MakePolicy(buffer::PolicyKind::kLru));
  Result<core::EvalResult> result = evaluator.Evaluate(query, &scratch);
  if (!result.ok()) return result.status();

  // doc -> 1/W_d for the top-k answers.
  std::unordered_map<DocId, double> top_inv_norm;
  for (const core::ScoredDoc& sd : result.value().top_docs) {
    const double norm = index.doc_norm(sd.doc);
    top_inv_norm.emplace(sd.doc, norm > 0.0 ? 1.0 / norm : 0.0);
  }
  const double denom =
      top_inv_norm.empty() ? 1.0 : static_cast<double>(top_inv_norm.size());

  // Re-scan each term's list, picking out the top-k documents.
  std::vector<RankedTerm> ranked;
  ranked.reserve(query.size());
  for (const core::QueryTerm& qt : query.terms()) {
    const index::TermInfo& info = index.lexicon().info(qt.term);
    const double wq = core::QueryTermWeight(qt.fq, info.idf);
    double sum = 0.0;
    for (uint32_t page_no = 0; page_no < info.pages; ++page_no) {
      // Pinned access like the evaluators: one page pinned at a time,
      // released before the next fetch (raw-fetch lint contract).
      Result<buffer::PinnedPage> page =
          scratch.FetchPinned(PageId{qt.term, page_no});
      if (!page.ok()) return page.status();
      const storage::PostingBlock& block = page.value()->block;
      for (const storage::PostingRun& run : block.runs) {
        const double partial = core::DocTermWeight(run.freq, info.idf) * wq;
        for (uint32_t i = run.begin; i < run.end; ++i) {
          auto it = top_inv_norm.find(block.doc_ids[i]);
          if (it != top_inv_norm.end()) sum += partial * it->second;
        }
      }
    }
    ranked.push_back(RankedTerm{qt, sum / denom});
  }

  std::sort(ranked.begin(), ranked.end(),
            [](const RankedTerm& a, const RankedTerm& b) {
              if (a.contribution != b.contribution) {
                return a.contribution > b.contribution;
              }
              return a.qt.term < b.qt.term;
            });
  return ranked;
}

}  // namespace irbuf::workload
