#include "workload/refinement.h"

namespace irbuf::workload {

const char* RefinementKindName(RefinementKind kind) {
  return kind == RefinementKind::kAddOnly ? "ADD-ONLY" : "ADD-DROP";
}

RefinementSequence BuildRefinementSequenceFromRanking(
    const std::string& title, const std::vector<RankedTerm>& ranking,
    RefinementKind kind, uint32_t group_size) {
  if (group_size == 0) group_size = 1;
  RefinementSequence sequence;
  sequence.title = title;
  sequence.kind = kind;
  sequence.ranking = ranking;

  // Contribution-ordered groups of `group_size` terms.
  std::vector<std::vector<RankedTerm>> groups;
  for (size_t start = 0; start < ranking.size(); start += group_size) {
    size_t end = std::min(ranking.size(), start + group_size);
    groups.emplace_back(ranking.begin() + start, ranking.begin() + end);
  }

  core::Query running;
  for (size_t g = 0; g < groups.size(); ++g) {
    RefinementStep step;
    if (kind == RefinementKind::kAddDrop && g > 0) {
      // Drop the lowest-contribution term of the previously added group
      // (groups preserve rank order, so that is its last member).
      TermId victim = groups[g - 1].back().qt.term;
      running.RemoveTerm(victim);
      step.dropped_terms.push_back(victim);
    }
    for (const RankedTerm& rt : groups[g]) {
      running.AddTerm(rt.qt.term, rt.qt.fq);
      step.added_terms.push_back(rt.qt.term);
    }
    step.query = running;
    sequence.steps.push_back(std::move(step));
  }
  return sequence;
}

Result<RefinementSequence> BuildRefinementSequence(
    const std::string& title, const core::Query& query,
    const index::InvertedIndex& index, RefinementKind kind,
    uint32_t group_size) {
  Result<std::vector<RankedTerm>> ranking =
      RankTermsByContribution(query, index);
  if (!ranking.ok()) return ranking.status();
  return BuildRefinementSequenceFromRanking(title, ranking.value(), kind,
                                            group_size);
}

RefinementSequence CollapseAllButLast(const RefinementSequence& sequence) {
  RefinementSequence collapsed;
  collapsed.title = sequence.title + " (collapsed)";
  collapsed.kind = sequence.kind;
  collapsed.ranking = sequence.ranking;
  if (sequence.steps.size() <= 1) {
    collapsed.steps = sequence.steps;
    return collapsed;
  }
  // One large first query: the state just before the last refinement.
  RefinementStep first;
  first.query = sequence.steps[sequence.steps.size() - 2].query;
  for (const core::QueryTerm& qt : first.query.terms()) {
    first.added_terms.push_back(qt.term);
  }
  collapsed.steps.push_back(std::move(first));
  collapsed.steps.push_back(sequence.steps.back());
  return collapsed;
}

}  // namespace irbuf::workload
