// Relevance-feedback query expansion (Rocchio-style positive feedback,
// [SB90] in the paper's references): after a query returns, the terms
// that weigh most heavily in the top-ranked documents are added to the
// query. The paper names "query refinement workloads generated using
// relevance feedback" as future work; this module builds exactly those
// workloads.

#ifndef IRBUF_WORKLOAD_FEEDBACK_H_
#define IRBUF_WORKLOAD_FEEDBACK_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "index/forward_index.h"
#include "index/inverted_index.h"
#include "util/status.h"
#include "workload/refinement.h"

namespace irbuf::workload {

/// Expansion tuning.
struct FeedbackOptions {
  /// Terms added per feedback round.
  uint32_t terms_per_round = 3;
  /// Top-ranked documents considered "relevant" by the user.
  uint32_t feedback_docs = 10;
  /// Expansion terms also raise the query frequency of re-occurring
  /// query terms by 1 (capped here), modelling fq growth via feedback.
  uint32_t max_fq = 5;
  /// Terms appearing in more than this fraction of the collection are
  /// never selected (they behave like stop-words).
  double max_df_fraction = 0.10;
};

/// Selects the `terms_per_round` highest-scoring expansion terms from
/// `top_docs` (score: sum over docs of w_{d,t} * idf_t, i.e. Rocchio's
/// positive centroid in tf-idf space), skipping terms already in
/// `query`. Returns the expanded query.
core::Query ExpandWithFeedback(const core::Query& query,
                               const std::vector<core::ScoredDoc>& top_docs,
                               const index::InvertedIndex& index,
                               const index::ForwardIndex& forward,
                               const FeedbackOptions& options);

/// Builds a refinement sequence by *running* feedback rounds: evaluate
/// the seed query (full evaluation on a private scratch pool), expand,
/// re-evaluate, ... for `rounds` rounds. Each step of the returned
/// sequence is one user submission, ready for RunRefinementSequence.
Result<RefinementSequence> BuildFeedbackSequence(
    const std::string& title, const core::Query& seed,
    const index::InvertedIndex& index, const index::ForwardIndex& forward,
    uint32_t rounds, const FeedbackOptions& options = {});

}  // namespace irbuf::workload

#endif  // IRBUF_WORKLOAD_FEEDBACK_H_
