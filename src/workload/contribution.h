// Term-contribution ranking (Section 5.1.2): terms of a query are ranked
// by their average contribution to the cosine similarity of the 20
// highest-ranked documents returned by DF with the unsafe optimization
// turned off (c_ins = c_add = 0, i.e. every posting of every term is
// processed). Refinement workloads are built from this ranking.

#ifndef IRBUF_WORKLOAD_CONTRIBUTION_H_
#define IRBUF_WORKLOAD_CONTRIBUTION_H_

#include <vector>

#include "core/filtering_evaluator.h"
#include "core/query.h"
#include "index/inverted_index.h"
#include "util/status.h"

namespace irbuf::workload {

/// A query term with its measured contribution.
struct RankedTerm {
  core::QueryTerm qt;
  /// Average over the top-k documents of w_{d,t} * w_{q,t} / W_d.
  double contribution = 0.0;
};

/// Ranks `query`'s terms by decreasing contribution. Runs a full
/// (unoptimized) evaluation internally with a private scratch buffer pool;
/// no caller-visible buffer state is touched.
Result<std::vector<RankedTerm>> RankTermsByContribution(
    const core::Query& query, const index::InvertedIndex& index,
    uint32_t top_k = 20);

}  // namespace irbuf::workload

#endif  // IRBUF_WORKLOAD_CONTRIBUTION_H_
