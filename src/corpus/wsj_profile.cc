#include "corpus/wsj_profile.h"

#include <algorithm>
#include <cmath>

namespace irbuf::corpus {

namespace {

// Derives the f_t range of each group from its page range and fills the
// idf bounds from N (idf = log2(N / f_t)).
void DeriveFtRanges(WsjProfile* profile) {
  for (IdfGroup& g : profile->groups) {
    g.ft_lo = (g.pages_lo - 1) * profile->page_size;  // Exclusive bound.
    g.ft_hi = g.pages_hi * profile->page_size;
    if (g.ft_lo == 0) g.ft_lo = 0;  // 1-page group: f_t in (0, 404].
  }
}

}  // namespace

WsjProfile PaperWsjProfile() {
  WsjProfile p;
  // Table 4 of the paper, verbatim.
  p.groups = {
      IdfGroup{"Low-idft", 1.91, 3.10, 51, 115, 265, 0, 0},
      IdfGroup{"Medium-idft", 3.10, 5.42, 11, 50, 1255, 0, 0},
      IdfGroup{"High-idft", 5.42, 8.74, 2, 10, 4540, 0, 0},
      IdfGroup{"Very-high-idft", 8.74, 17.40, 1, 1, 160957, 0, 0},
  };
  DeriveFtRanges(&p);
  return p;
}

// Scaling preserves the paper's *structure*, not just its totals:
//  - documents, term counts and f_t boundaries scale by `scale`, so the
//    idf bands of Table 4 are preserved (N and f_t shrink together);
//  - the page size scales by the same factor, so each group keeps the
//    paper's page-count ranges (a "Low-idft" term still has 51-115
//    pages at any scale) and the buffer-size dynamics are comparable;
//  - total postings therefore scale by scale^2 (scale times as many
//    terms, each scale times as long).
WsjProfile ScaledWsjProfile(double scale) {
  if (scale >= 1.0) return PaperWsjProfile();
  if (scale <= 0.0) scale = 0.01;
  WsjProfile p = PaperWsjProfile();
  auto scaled = [scale](uint32_t v, uint32_t min_v) {
    return std::max(min_v, static_cast<uint32_t>(std::llround(
                               static_cast<double>(v) * scale)));
  };
  p.num_docs = scaled(p.num_docs, 100);
  p.page_size = scaled(p.page_size, 2);
  p.total_postings = static_cast<uint64_t>(
      static_cast<double>(p.total_postings) * scale * scale);
  uint32_t terms = 0;
  for (IdfGroup& g : p.groups) {
    g.num_terms = scaled(g.num_terms, 4);
    // Page ranges stay as in the paper; f_t boundaries follow from them
    // and the scaled page size (exactly as DeriveFtRanges does).
    g.ft_lo = (g.pages_lo - 1) * p.page_size;
    g.ft_hi = g.pages_hi * p.page_size;
    terms += g.num_terms;
  }
  p.num_terms = terms;
  p.multi_page_terms =
      p.groups[0].num_terms + p.groups[1].num_terms + p.groups[2].num_terms;
  return p;
}

int GroupOfPages(const WsjProfile& profile, uint32_t pages) {
  for (size_t i = 0; i < profile.groups.size(); ++i) {
    if (pages >= profile.groups[i].pages_lo &&
        pages <= profile.groups[i].pages_hi) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace irbuf::corpus
