// The WSJ-calibrated synthetic corpus: an inverted index whose statistics
// match the paper's Table 4 (inverted-list length distribution by idf
// group), plus 100 topics with synthetic relevance judgments.
//
// Substitution note (see DESIGN.md): the paper indexes the TREC WSJ
// collection, which is not redistributable. Everything the paper measures
// depends only on (a) the distribution of inverted-list lengths, (b) the
// within-list frequency skew that the filtering thresholds cut into, and
// (c) the term-overlap/relevance structure of the refinement queries. The
// generator reproduces (a) exactly — per-group term counts are assigned
// deterministically, not sampled — and (b)/(c) statistically.

#ifndef IRBUF_CORPUS_SYNTHETIC_CORPUS_H_
#define IRBUF_CORPUS_SYNTHETIC_CORPUS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "corpus/topics.h"
#include "corpus/wsj_profile.h"
#include "index/index_builder.h"
#include "index/inverted_index.h"
#include "util/status.h"

namespace irbuf::corpus {

/// Generator configuration.
struct CorpusOptions {
  /// 1.0 = the paper's full WSJ profile (173,252 docs / 167,017 terms /
  /// ~31.5 M postings). Smaller values shrink everything linearly —
  /// useful for tests; benches honour the IRBUF_SCALE env var.
  double scale = 1.0;
  uint32_t page_size = 404;
  uint64_t seed = 42;
  /// Designed topics QUERY1-4 at the front of topics().
  bool designed_topics = true;
  /// Additional random TREC-like topics (total = 4 + this).
  uint32_t num_random_topics = 96;
  /// Re-adds the 100 highest-f_t "stop-words" to the index and queries
  /// (the Section 5.1.1 footnote-13 configuration).
  bool include_stopwords = false;
  uint32_t num_stopwords = 100;
  /// Physical list order. kDocumentOrdered builds the traditional layout
  /// for the footnote-14 comparison (filtering cannot stop early there).
  index::ListOrder list_order = index::ListOrder::kFrequencySorted;
};

/// The generated collection.
class SyntheticCorpus {
 public:
  SyntheticCorpus(index::InvertedIndex index, std::vector<Topic> topics,
                  WsjProfile profile)
      : index_(std::move(index)),
        topics_(std::move(topics)),
        profile_(std::move(profile)) {}

  const index::InvertedIndex& index() const { return index_; }
  const std::vector<Topic>& topics() const { return topics_; }
  const WsjProfile& profile() const { return profile_; }

 private:
  index::InvertedIndex index_;
  std::vector<Topic> topics_;
  WsjProfile profile_;
};

/// Generates the corpus. Deterministic in (options.seed, options.scale).
Result<std::unique_ptr<SyntheticCorpus>> GenerateSyntheticCorpus(
    const CorpusOptions& options);

/// Reads the IRBUF_SCALE environment variable (default 1.0, clamped to
/// (0, 1]) — the knob every bench binary honours.
double ScaleFromEnv();

}  // namespace irbuf::corpus

#endif  // IRBUF_CORPUS_SYNTHETIC_CORPUS_H_
