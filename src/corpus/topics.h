// Topic (query + relevance judgments) synthesis. Mirrors the paper's use
// of TREC topics 51-150: 100 topics, 30-100 query terms each after
// analysis, with per-term query frequencies. Four *designed* topics
// reproduce the characteristics of the paper's hand-selected queries
// (Table 5 / Figure 4):
//
//   QUERY1 — one dominant term (high f_{q,t}, strong relevance boost)
//            sitting 12th in decreasing-idf order; Smax jumps when it is
//            processed. Term (idf, f_{q,t}) pairs are taken verbatim from
//            the paper's Table 6.
//   QUERY2 — two moderately contributing terms, 13th and 22nd in idf
//            order; Smax rises in two steps.
//   QUERY3 — no dominant term; Smax stays low and filtering saves little.
//   QUERY4 — very many terms (99) with medium/long inverted lists; big
//            savings from the low-idf lists alone.

#ifndef IRBUF_CORPUS_TOPICS_H_
#define IRBUF_CORPUS_TOPICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query.h"
#include "storage/types.h"
#include "util/rng.h"

namespace irbuf::corpus {

/// A query with its (synthetic) relevance judgments.
struct Topic {
  std::string title;
  core::Query query;
  /// Judged-relevant documents, ascending. The generator biases topic-term
  /// frequencies towards these documents, so cosine ranking correlates
  /// with relevance.
  std::vector<DocId> relevant_docs;
};

/// Read-only view of the vocabulary during topic design (before the index
/// exists). Terms are ordered by document frequency descending, so idf is
/// non-decreasing in TermId.
class TermCatalog {
 public:
  TermCatalog(const std::vector<uint32_t>* fts, uint32_t num_docs,
              uint32_t page_size)
      : fts_(fts), num_docs_(num_docs), page_size_(page_size) {}

  size_t size() const { return fts_->size(); }
  uint32_t FtOf(TermId t) const { return (*fts_)[t]; }
  double IdfOf(TermId t) const;
  uint32_t PagesOf(TermId t) const {
    return ((*fts_)[t] + page_size_ - 1) / page_size_;
  }
  uint32_t num_docs() const { return num_docs_; }

  /// The unused term whose idf is closest to `target`; marks it used.
  TermId ClaimByIdf(double target, std::vector<bool>* used) const;

 private:
  const std::vector<uint32_t>* fts_;
  uint32_t num_docs_;
  uint32_t page_size_;
};

/// Relevance-boost instruction: in each relevant document of the topic
/// (independently, with probability growing with `strength`), the term's
/// frequency is raised. strength in (0, 1].
struct BoostSpec {
  TermId term = 0;
  double strength = 0.0;
};

/// A topic before materialization: terms, boosts, and how many relevant
/// documents to designate.
struct TopicSpec {
  std::string title;
  std::vector<core::QueryTerm> terms;
  std::vector<BoostSpec> boosts;
  uint32_t num_relevant = 0;
};

/// The four designed topics (QUERY1-4). Claims terms from `*used`.
std::vector<TopicSpec> DesignedTopicSpecs(const TermCatalog& catalog,
                                          std::vector<bool>* used,
                                          Pcg32* rng);

/// One random TREC-like topic (30-100 terms, mixed idf profile). Claims
/// terms from `*used` during construction but releases its own claims
/// before returning, so different random topics may share terms (as real
/// TREC topics do) while never colliding with the designed topics.
TopicSpec RandomTopicSpec(const TermCatalog& catalog, int index,
                          std::vector<bool>* used, Pcg32* rng);

}  // namespace irbuf::corpus

#endif  // IRBUF_CORPUS_TOPICS_H_
