// Real-text ingestion helpers: a small embedded news corpus (Wall Street
// Journal-flavoured, in the spirit of the paper's collection) and a
// convenience builder that runs documents through the full analysis
// pipeline into an inverted index. Used by the examples and by the
// end-to-end text tests; the performance experiments use the calibrated
// synthetic corpus instead.

#ifndef IRBUF_CORPUS_TEXT_CORPUS_H_
#define IRBUF_CORPUS_TEXT_CORPUS_H_

#include <string>
#include <vector>

#include "index/index_builder.h"
#include "text/pipeline.h"
#include "util/status.h"

namespace irbuf::corpus {

/// A raw text document.
struct TextDocument {
  std::string title;
  std::string body;
};

/// ~40 short business-news articles embedded in the binary, so the
/// quickstart example runs with zero external data.
const std::vector<TextDocument>& EmbeddedNewsCorpus();

/// Tokenizes, stems and indexes `docs` (doc id = position in the vector).
Result<index::InvertedIndex> BuildIndexFromDocuments(
    const std::vector<TextDocument>& docs,
    const text::AnalysisPipeline& pipeline, uint32_t page_size = 64);

}  // namespace irbuf::corpus

#endif  // IRBUF_CORPUS_TEXT_CORPUS_H_
