// Calibration constants of the paper's indexed collection: the TREC WSJ
// sub-collection (Wall Street Journal 1987-1992) as reported in Sections
// 4.2 and 5.1 (Table 4). The synthetic corpus generator reproduces these
// statistics; bench_table4_index_stats prints measured vs. paper values.
//
// A useful identity: with frequency-sorted lists of PageSize = 404 and
// N = 173,252, the Table 4 idf group boundaries correspond *exactly* to
// page-count boundaries, because idf_t = log2(N / f_t) and a term's page
// count is ceil(f_t / 404). The groups are therefore fully determined by
// the document-frequency (f_t) distribution, which is what we calibrate.

#ifndef IRBUF_CORPUS_WSJ_PROFILE_H_
#define IRBUF_CORPUS_WSJ_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace irbuf::corpus {

/// One row of the paper's Table 4.
struct IdfGroup {
  std::string name;
  double idf_lo = 0.0;    // Inclusive.
  double idf_hi = 0.0;    // Exclusive (last group: inclusive).
  uint32_t pages_lo = 0;  // Inclusive page-count range.
  uint32_t pages_hi = 0;
  uint32_t num_terms = 0;
  /// Document-frequency range implied by the page range (f_t in
  /// (ft_lo, ft_hi], with ft_hi = pages_hi * page_size).
  uint32_t ft_lo = 0;
  uint32_t ft_hi = 0;
};

/// The WSJ collection profile.
struct WsjProfile {
  /// Number of documents N.
  uint32_t num_docs = 173252;
  /// Distinct terms after stop-word removal and stemming.
  uint32_t num_terms = 167017;
  /// Total (d, f_{d,t}) entries, "approximately 31.5 million".
  uint64_t total_postings = 31500000;
  /// Postings per page after the paper's 10x scaling.
  uint32_t page_size = 404;
  /// Terms with inverted lists longer than one page.
  uint32_t multi_page_terms = 6060;

  /// Table 4 rows, most-popular group first.
  std::vector<IdfGroup> groups;
};

/// The paper's published profile.
WsjProfile PaperWsjProfile();

/// A linearly scaled-down profile for smoke tests (scale in (0, 1]):
/// documents, per-group term counts and document frequencies all scale,
/// which preserves the idf ranges (both N and f_t shrink together).
WsjProfile ScaledWsjProfile(double scale);

/// Classifies a page count into a Table 4 group index of `profile`, or -1.
int GroupOfPages(const WsjProfile& profile, uint32_t pages);

}  // namespace irbuf::corpus

#endif  // IRBUF_CORPUS_WSJ_PROFILE_H_
