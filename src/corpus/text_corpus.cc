#include "corpus/text_corpus.h"

namespace irbuf::corpus {

const std::vector<TextDocument>& EmbeddedNewsCorpus() {
  static const std::vector<TextDocument>* corpus =
      new std::vector<TextDocument>{
          {"Stock markets rally on rate cut hopes",
           "American stock markets rallied sharply on Tuesday as investors "
           "bet that the central bank would cut interest rates. The drastic "
           "price increases lifted technology and banking shares alike, and "
           "trading volume on the exchange reached a record high."},
          {"Drastic price increases hit grocery shoppers",
           "Grocery prices increased drastically last month, with dairy and "
           "grain products leading the surge. Analysts blamed transport "
           "costs and poor harvests for the price pressure on consumers."},
          {"Satellite launch contract awarded",
           "The aerospace consortium won a satellite launch contract worth "
           "two billion dollars. The contract covers four launches of "
           "communication satellites over the next three years."},
          {"Computer aided medical diagnosis gains ground",
           "Hospitals are adopting computer aided diagnosis systems that "
           "analyze medical images. Early studies suggest the software "
           "detects certain cancers earlier than human screening alone."},
          {"Health hazards from fine diameter fibers studied",
           "Researchers warned of health hazards from fine diameter fibers "
           "such as asbestos and mineral wool. Workers who install "
           "insulation face the highest exposure to the fibers, and lung "
           "disease rates among them remain elevated."},
          {"Telephone company reports strong earnings",
           "The long distance telephone company reported strong quarterly "
           "earnings, citing growth in business data services. Its shares "
           "increased five percent in heavy trading."},
          {"Investment banks expand overseas",
           "Large investment banks are expanding their overseas operations, "
           "opening offices in Tokyo and Frankfurt. The investment push "
           "follows deregulation of foreign securities markets."},
          {"Oil prices fall as supply grows",
           "Crude oil prices fell for the third week as supply from new "
           "fields grew faster than demand. Refiners expect gasoline "
           "prices to decline into the summer driving season."},
          {"Airlines raise fares on business routes",
           "Major airlines raised fares on busy business routes, testing "
           "travelers' tolerance for higher prices. Discount carriers kept "
           "their fares unchanged and gained market share."},
          {"Semiconductor makers boost capacity",
           "Semiconductor manufacturers announced plans to boost production "
           "capacity with new fabrication plants. Memory chip prices have "
           "increased as personal computer demand recovers."},
          {"Bank merger creates regional giant",
           "Two regional banks agreed to merge, creating the largest bank "
           "in the region. Regulators are expected to review the merger "
           "for its effect on small business lending."},
          {"Retailers report holiday sales gains",
           "Retailers reported solid holiday sales gains led by apparel and "
           "electronics. Department stores, however, continued to lose "
           "ground to discount chains."},
          {"Drug maker wins approval for heart treatment",
           "The pharmaceutical company won regulatory approval for a new "
           "heart treatment. Analysts estimate the drug could reach a "
           "billion dollars in annual sales within five years."},
          {"Auto makers cut production amid slow demand",
           "Automobile manufacturers cut production schedules as demand "
           "slowed and inventories grew. Truck sales remained the one "
           "bright spot for the industry."},
          {"Insurance losses mount after hurricane",
           "Property insurers face mounting losses after the hurricane "
           "struck the coast. Reinsurance prices are expected to increase "
           "drastically at the next renewal."},
          {"Steel industry seeks import relief",
           "Steel producers asked the government for relief from cheap "
           "imports, claiming foreign mills sell below cost. Importers "
           "countered that domestic prices have already increased."},
          {"Software firm doubles revenue",
           "The software firm doubled its revenue on sales of database and "
           "network management products. Its stock price has increased "
           "fourfold since the public offering."},
          {"Bond market steadies after inflation report",
           "The bond market steadied after a report showed inflation "
           "remains moderate. Treasury yields eased and corporate issuance "
           "resumed at a brisk pace."},
          {"Utilities invest in renewable energy",
           "Electric utilities announced investments in wind and solar "
           "generation. The investments follow new rules that reward "
           "renewable capacity additions."},
          {"Trade deficit narrows on export growth",
           "The trade deficit narrowed as exports of aircraft, grain and "
           "machinery grew. Economists said the export growth supports "
           "manufacturing employment."},
          {"Media conglomerate buys cable network",
           "The media conglomerate agreed to buy a cable television network "
           "for three billion dollars. The purchase extends its reach into "
           "news and sports programming."},
          {"Housing starts climb to five year high",
           "Housing starts climbed to a five year high as mortgage rates "
           "declined. Builders reported strong demand for starter homes in "
           "southern markets."},
          {"Chemical spill prompts safety review",
           "A chemical spill at the river plant prompted a safety review "
           "across the industry. Workplace exposure standards for solvent "
           "vapors may be tightened."},
          {"Farm prices recover after drought",
           "Farm prices recovered as the drought eased and export orders "
           "returned. Corn and soybean futures increased while livestock "
           "prices held steady."},
          {"Brokerage fined for sales practices",
           "Regulators fined the brokerage for improper sales practices in "
           "retirement accounts. The firm agreed to reimburse customers "
           "and improve supervision."},
          {"Computer network security concerns grow",
           "Corporations reported growing concern over computer network "
           "security after several intrusions. Vendors of security "
           "software saw orders increase sharply."},
          {"Textile workers face plant closings",
           "Textile workers face plant closings as production moves "
           "overseas. Union officials asked for retraining funds and "
           "extended benefits for affected workers."},
          {"Gold rises on currency weakness",
           "Gold prices rose as the dollar weakened against major "
           "currencies. Mining shares increased with the metal, led by "
           "South African producers."},
          {"Hospital costs increase despite reforms",
           "Hospital costs increased again despite payment reforms. "
           "Insurers are steering patients toward outpatient clinics to "
           "contain medical spending."},
          {"Cellular phone subscribers double",
           "Cellular telephone subscribers doubled for the second straight "
           "year. Carriers are investing in digital networks to expand "
           "capacity in urban markets."},
          {"Paper industry raises prices",
           "Paper manufacturers raised prices for newsprint and packaging "
           "grades. Publishers warned the increases would pressure "
           "advertising rates."},
          {"Venture capital flows to biotechnology",
           "Venture capital investment flowed to biotechnology startups "
           "developing cancer diagnostics. The investment pace set a "
           "record for the third consecutive quarter."},
          {"Railroad merger faces regulatory hurdle",
           "The railroad merger faces a regulatory hurdle over competition "
           "in grain shipping corridors. Shippers testified that rates "
           "would increase without a rival line."},
          {"Consumer confidence slips on job worries",
           "Consumer confidence slipped as households worried about job "
           "security amid corporate layoffs. Spending on durable goods "
           "declined for the month."},
          {"Aerospace supplier wins engine order",
           "The aerospace supplier won a large engine order from an asian "
           "airline. The order secures production at its turbine plant "
           "through the decade."},
          {"Municipal bonds attract retail investors",
           "Municipal bonds attracted retail investors seeking tax exempt "
           "income. New issues from school districts were oversubscribed "
           "within hours."},
          {"Fishing industry contends with quotas",
           "The fishing industry contends with new quotas designed to "
           "rebuild depleted stocks. Processors expect fish prices to "
           "increase at the dock."},
          {"Data storage prices continue decline",
           "Prices for computer data storage continued their steady "
           "decline. Disk drive makers compete on capacity while margins "
           "narrow across the industry."},
          {"Stockmarket volatility worries regulators",
           "Regulators voiced worry over stockmarket volatility driven by "
           "program trading. Exchanges proposed circuit breakers to pause "
           "trading after drastic price moves."},
          {"Mining company settles workplace suit",
           "The mining company settled a workplace safety suit brought by "
           "workers exposed to silica dust. The settlement funds medical "
           "monitoring for lung disease."},
      };
  return *corpus;
}

Result<index::InvertedIndex> BuildIndexFromDocuments(
    const std::vector<TextDocument>& docs,
    const text::AnalysisPipeline& pipeline, uint32_t page_size) {
  index::IndexBuilderOptions options;
  options.page_size = page_size;
  options.num_docs = static_cast<uint32_t>(docs.size());
  index::IndexBuilder builder(options);
  for (size_t i = 0; i < docs.size(); ++i) {
    std::string full = docs[i].title + " " + docs[i].body;
    IRBUF_RETURN_NOT_OK(builder.AddDocument(
        static_cast<DocId>(i), pipeline.TermFrequencies(full)));
  }
  return std::move(builder).Build();
}

}  // namespace irbuf::corpus
