#include "corpus/topics.h"

#include <algorithm>
#include <cmath>

#include "util/str.h"

namespace irbuf::corpus {

double TermCatalog::IdfOf(TermId t) const {
  return std::log2(static_cast<double>(num_docs_) /
                   static_cast<double>((*fts_)[t]));
}

TermId TermCatalog::ClaimByIdf(double target,
                               std::vector<bool>* used) const {
  // Term ids are ordered by f_t descending, so idf is non-decreasing in
  // the id; binary-search the insertion point, then expand outwards to the
  // nearest unused term.
  const size_t n = fts_->size();
  size_t lo = 0, hi = n;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (IdfOf(static_cast<TermId>(mid)) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // Nearest unused candidate above and below the insertion point.
  size_t best = n;
  double best_dist = 0.0;
  for (size_t i = lo; i < n; ++i) {
    if (!(*used)[i]) {
      best = i;
      best_dist = std::abs(IdfOf(static_cast<TermId>(i)) - target);
      break;
    }
  }
  for (size_t j = lo; j-- > 0;) {
    if (!(*used)[j]) {
      double dist = std::abs(IdfOf(static_cast<TermId>(j)) - target);
      if (best == n || dist < best_dist) best = j;
      break;
    }
  }
  if (best == n) best = n - 1;  // Degenerate: everything used.
  (*used)[best] = true;
  return static_cast<TermId>(best);
}

namespace {

/// One row of the paper's Table 6: the ADD-ONLY-QUERY1 term profile.
struct Query1Row {
  double idf;
  uint32_t fq;
  double contribution;  // Average contribution to top-20 cosine scores.
};

// Verbatim from Table 6 (term text omitted; only the statistics matter).
constexpr Query1Row kQuery1Rows[] = {
    {7.20, 5, 5.56}, {8.28, 1, 0.70}, {7.86, 2, 0.39}, {4.95, 3, 0.36},
    {3.98, 2, 0.35}, {6.08, 1, 0.33}, {9.67, 1, 0.29}, {8.06, 1, 0.28},
    {6.22, 1, 0.23}, {10.18, 3, 0.22}, {3.40, 2, 0.21}, {5.37, 3, 0.20},
    {9.77, 1, 0.19}, {12.19, 1, 0.18}, {5.53, 2, 0.17}, {7.75, 1, 0.15},
    {3.99, 2, 0.14}, {3.56, 2, 0.14}, {3.18, 2, 0.13}, {5.04, 1, 0.12},
    {8.73, 1, 0.10}, {2.28, 2, 0.09}, {6.52, 1, 0.08}, {4.17, 2, 0.06},
    {5.21, 3, 0.05}, {2.00, 2, 0.04}, {6.46, 2, 0.04}, {5.49, 1, 0.04},
    {4.82, 1, 0.03}, {3.42, 1, 0.03}, {3.10, 1, 0.02}, {5.81, 1, 0.02},
    {4.23, 1, 0.01}, {10.38, 2, 0.00}, {6.77, 1, 0.00}, {7.60, 1, 0.00},
};

void AddTerm(TopicSpec* spec, const TermCatalog& catalog,
             std::vector<bool>* used, double idf, uint32_t fq,
             double strength) {
  TermId term = catalog.ClaimByIdf(idf, used);
  spec->terms.push_back(core::QueryTerm{term, fq});
  if (strength > 0.0) spec->boosts.push_back(BoostSpec{term, strength});
}

}  // namespace

std::vector<TopicSpec> DesignedTopicSpecs(const TermCatalog& catalog,
                                          std::vector<bool>* used,
                                          Pcg32* rng) {
  std::vector<TopicSpec> specs;

  // --- QUERY1: Table 6 verbatim; boost strengths proportional to the
  // published contributions (one dominant term, "fiber"-like). ---
  {
    TopicSpec q1;
    q1.title = "QUERY1 (health hazards from fine-diameter fibers)";
    q1.num_relevant = 150;
    for (const Query1Row& row : kQuery1Rows) {
      // Sub-linear mapping lifts the mid-tier contributors so Smax climbs
      // the way Figure 4 shows for QUERY1.
      double strength =
          std::max(0.05, std::pow(row.contribution / 5.56, 0.4));
      AddTerm(&q1, catalog, used, row.idf, row.fq, strength);
    }
    specs.push_back(std::move(q1));
  }

  // --- QUERY2: two moderate contributors, 13th and 22nd in idf order. ---
  {
    TopicSpec q2;
    q2.title = "QUERY2 (satellite launch contracts)";
    q2.num_relevant = 120;
    const int n = 31;
    for (int i = 0; i < n; ++i) {
      double idf = 12.0 - 10.0 * static_cast<double>(i) / (n - 1);
      double strength = 0.03;
      uint32_t fq = 1 + (i % 3 == 0 ? 1u : 0u);
      if (i == 12) {  // 13th in decreasing-idf order.
        strength = 0.55;
        fq = 3;
      } else if (i == 21) {  // 22nd.
        strength = 0.40;
        fq = 2;
      }
      AddTerm(&q2, catalog, used, idf, fq, strength);
    }
    specs.push_back(std::move(q2));
  }

  // --- QUERY3: no dominant term; filtering has little to work with. ---
  {
    TopicSpec q3;
    q3.title = "QUERY3 (computer-aided medical diagnosis)";
    q3.num_relevant = 100;
    const int n = 31;
    for (int i = 0; i < n; ++i) {
      double idf = 11.5 - 9.4 * static_cast<double>(i) / (n - 1);
      AddTerm(&q3, catalog, used, idf, 1 + (i % 2 == 0 ? 1u : 0u), 0.03);
    }
    specs.push_back(std::move(q3));
  }

  // --- QUERY4: 99 terms, heavy on medium/long inverted lists. ---
  {
    TopicSpec q4;
    q4.title = "QUERY4 (MCI)";
    q4.num_relevant = 180;
    auto uniform = [rng](double lo, double hi) {
      return lo + (hi - lo) * rng->NextDouble();
    };
    for (int i = 0; i < 36; ++i) {
      AddTerm(&q4, catalog, used, uniform(2.0, 3.1),
              1 + rng->NextBounded(3), uniform(0.15, 0.55));
    }
    for (int i = 0; i < 45; ++i) {
      AddTerm(&q4, catalog, used, uniform(3.2, 5.4),
              1 + rng->NextBounded(3), uniform(0.15, 0.50));
    }
    for (int i = 0; i < 15; ++i) {
      AddTerm(&q4, catalog, used, uniform(5.5, 8.7),
              1 + rng->NextBounded(2), uniform(0.10, 0.35));
    }
    for (int i = 0; i < 3; ++i) {
      AddTerm(&q4, catalog, used, uniform(9.0, 13.0), 1,
              uniform(0.05, 0.20));
    }
    specs.push_back(std::move(q4));
  }

  return specs;
}

TopicSpec RandomTopicSpec(const TermCatalog& catalog, int index,
                          std::vector<bool>* used, Pcg32* rng) {
  TopicSpec spec;
  spec.title = StrFormat("TOPIC%03d", index);
  spec.num_relevant = 30 + rng->NextBounded(171);
  const int num_terms = 30 + static_cast<int>(rng->NextBounded(71));

  std::vector<TermId> claimed;
  claimed.reserve(num_terms);
  for (int i = 0; i < num_terms; ++i) {
    // idf profile mirroring analyzed TREC topics (Table 6): page mass
    // concentrates in the idf 2-5.4 lists (QUERY1 has ~90% of its 659
    // pages there), with a long tail of rare one-page terms.
    double u = rng->NextDouble();
    double lo, hi;
    if (u < 0.06) {
      lo = 1.95; hi = 3.10;
    } else if (u < 0.28) {
      lo = 3.10; hi = 5.40;
    } else if (u < 0.55) {
      lo = 5.45; hi = 8.70;
    } else {
      lo = 8.80; hi = 16.00;
    }
    double idf = lo + (hi - lo) * rng->NextDouble();

    uint32_t fq;
    uint32_t r = rng->NextBounded(100);
    if (r < 70) {
      fq = 1;
    } else if (r < 90) {
      fq = 2;
    } else if (r < 98) {
      fq = 3;
    } else {
      fq = 5;
    }

    // The leading terms carry most of the topic's relevance signal; the
    // tiers are calibrated so that Smax on a typical topic reaches the
    // magnitudes that give DF its ~2/3 average read savings (Fig. 3).
    double strength;
    if (i < 8) {
      strength = 0.40 + 0.50 * rng->NextDouble();
    } else if (i < 18) {
      strength = 0.15 + 0.25 * rng->NextDouble();
    } else {
      strength = 0.03 + 0.12 * rng->NextDouble();
    }

    TermId term = catalog.ClaimByIdf(idf, used);
    claimed.push_back(term);
    spec.terms.push_back(core::QueryTerm{term, fq});
    spec.boosts.push_back(BoostSpec{term, strength});
  }
  // Release this topic's claims so other random topics may share terms.
  for (TermId t : claimed) (*used)[t] = false;
  return spec;
}

}  // namespace irbuf::corpus
