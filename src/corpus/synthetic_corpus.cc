#include "corpus/synthetic_corpus.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "index/index_builder.h"
#include "util/str.h"
#include "util/zipf.h"

namespace irbuf::corpus {

namespace {

/// Mean within-document frequency as a function of idf: common terms
/// occur a little more often per document; rare terms mostly once. Tuned
/// so that f_{d,t} > 10 is rare outside the first page of a list, as the
/// paper observes (Section 3.2.2, footnote 6).
double MeanFreqForIdf(double idf) {
  return 1.0 + 1.2 * std::exp(-idf / 4.0);
}

/// Fits the exponent s of a discrete Zipf pmf over [1, max_value] so its
/// mean matches `target_mean`, by bisection (mean is decreasing in s).
double FitZipfExponent(uint32_t max_value, double target_mean) {
  auto mean_of = [max_value](double s) {
    double num = 0.0, den = 0.0;
    for (uint32_t k = 1; k <= max_value; ++k) {
      double pk = std::pow(static_cast<double>(k), -s);
      num += static_cast<double>(k) * pk;
      den += pk;
    }
    return num / den;
  };
  double lo = 0.01, hi = 8.0;
  if (target_mean >= mean_of(lo)) return lo;
  if (target_mean <= mean_of(hi)) return hi;
  for (int iter = 0; iter < 60; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (mean_of(mid) > target_mean) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Deterministic document-frequency assignment matching the profile's
/// per-group term counts exactly. Values descend with the index.
std::vector<uint32_t> BuildFtDistribution(const WsjProfile& profile) {
  std::vector<uint32_t> fts;
  fts.reserve(profile.num_terms);
  uint64_t used_postings = 0;

  // Multi-page groups: log-spaced quantiles within (ft_lo, ft_hi].
  for (size_t gi = 0; gi + 1 < profile.groups.size(); ++gi) {
    const IdfGroup& g = profile.groups[gi];
    const double hi = static_cast<double>(g.ft_hi);
    const double lo = static_cast<double>(std::max<uint32_t>(g.ft_lo, 1));
    for (uint32_t i = 0; i < g.num_terms; ++i) {
      double frac = (static_cast<double>(i) + 0.5) /
                    static_cast<double>(g.num_terms);
      double ft = hi * std::pow(lo / hi, frac);
      uint32_t v = static_cast<uint32_t>(std::llround(ft));
      v = std::clamp(v, g.ft_lo + 1, g.ft_hi);
      fts.push_back(v);
      used_postings += v;
    }
  }

  // Single-page group: a fitted Zipf pmf over [1, ft_hi], with its mean
  // chosen so the collection total matches the profile's posting count.
  const IdfGroup& last = profile.groups.back();
  const uint32_t n = last.num_terms;
  const uint32_t max_ft = std::max<uint32_t>(last.ft_hi, 1);
  double budget =
      profile.total_postings > used_postings
          ? static_cast<double>(profile.total_postings - used_postings)
          : static_cast<double>(n);
  double target_mean =
      std::clamp(budget / static_cast<double>(n), 1.0,
                 0.45 * static_cast<double>(max_ft));
  double s = FitZipfExponent(max_ft, target_mean);

  // CDF of the pmf, then descending quantile assignment.
  std::vector<double> cdf(max_ft + 1, 0.0);
  double total = 0.0;
  for (uint32_t k = 1; k <= max_ft; ++k) {
    total += std::pow(static_cast<double>(k), -s);
    cdf[k] = total;
  }
  for (uint32_t k = 1; k <= max_ft; ++k) cdf[k] /= total;
  auto quantile = [&cdf, max_ft](double p) {
    auto it = std::lower_bound(cdf.begin() + 1, cdf.end(), p);
    uint32_t k = static_cast<uint32_t>(it - cdf.begin());
    return std::min(k, max_ft);
  };
  for (uint32_t i = 0; i < n; ++i) {
    double p = 1.0 - (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    fts.push_back(std::max<uint32_t>(1, quantile(p)));
  }
  return fts;
}

/// Extra-frequency boosts keyed by document, for one term.
using BoostsByTerm = std::unordered_map<TermId, std::vector<Posting>>;

void MergeBoosts(BoostsByTerm* boosts) {
  for (auto& [term, entries] : *boosts) {
    std::sort(entries.begin(), entries.end(),
              [](const Posting& a, const Posting& b) {
                return a.doc < b.doc;
              });
    std::vector<Posting> merged;
    merged.reserve(entries.size());
    for (const Posting& e : entries) {
      if (!merged.empty() && merged.back().doc == e.doc) {
        merged.back().freq += e.freq;
      } else {
        merged.push_back(e);
      }
    }
    entries = std::move(merged);
  }
}

}  // namespace

double ScaleFromEnv() {
  const char* env = std::getenv("IRBUF_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  if (v <= 0.0 || v > 1.0) return 1.0;
  return v;
}

Result<std::unique_ptr<SyntheticCorpus>> GenerateSyntheticCorpus(
    const CorpusOptions& options) {
  WsjProfile profile = ScaledWsjProfile(options.scale);
  if (options.page_size != storage::kDefaultPageSize) {
    // A custom page size is interpreted at full scale and scaled along
    // with everything else; f_t boundaries follow the page ranges.
    profile.page_size = std::max<uint32_t>(
        2, static_cast<uint32_t>(std::llround(
               options.page_size * std::min(options.scale, 1.0))));
    for (IdfGroup& g : profile.groups) {
      g.ft_lo = (g.pages_lo - 1) * profile.page_size;
      g.ft_hi = g.pages_hi * profile.page_size;
    }
  }
  Pcg32 rng(options.seed);

  // ---- 1. Document frequencies (term ids ordered by f_t descending). ----
  std::vector<uint32_t> fts = BuildFtDistribution(profile);
  uint32_t num_stopwords = 0;
  if (options.include_stopwords) {
    // Prepend "stop-words": the num_stopwords highest-f_t terms, with idf
    // below the Table 4 low group (the paper's footnote-13 configuration).
    num_stopwords = options.num_stopwords;
    std::vector<uint32_t> with_stops;
    with_stops.reserve(fts.size() + num_stopwords);
    for (uint32_t i = 0; i < num_stopwords; ++i) {
      double frac = (static_cast<double>(i) + 0.5) /
                    static_cast<double>(num_stopwords);
      double share = 0.92 * std::pow(0.30 / 0.92, frac);
      with_stops.push_back(std::max<uint32_t>(
          1, static_cast<uint32_t>(share *
                                   static_cast<double>(profile.num_docs))));
    }
    with_stops.insert(with_stops.end(), fts.begin(), fts.end());
    fts = std::move(with_stops);
  }
  const uint32_t num_docs = profile.num_docs;
  const size_t num_terms = fts.size();

  // ---- 2. Topic specs. ----
  TermCatalog catalog(&fts, num_docs, profile.page_size);
  std::vector<bool> used(num_terms, false);
  // Stop-word ids are never picked as content terms.
  for (uint32_t i = 0; i < num_stopwords; ++i) used[i] = true;

  std::vector<TopicSpec> specs;
  if (options.designed_topics) {
    specs = DesignedTopicSpecs(catalog, &used, &rng);
  }
  for (uint32_t i = 0; i < options.num_random_topics; ++i) {
    specs.push_back(RandomTopicSpec(catalog, static_cast<int>(i), &used,
                                    &rng));
  }
  if (num_stopwords > 0) {
    // Queries in the with-stop-words configuration contain a few of them.
    for (TopicSpec& spec : specs) {
      uint32_t count = 3 + rng.NextBounded(6);
      for (uint32_t i = 0; i < count; ++i) {
        TermId sw = rng.NextBounded(num_stopwords);
        bool present = false;
        for (const core::QueryTerm& qt : spec.terms) {
          if (qt.term == sw) present = true;
        }
        if (!present) {
          spec.terms.push_back(core::QueryTerm{sw, 1 + rng.NextBounded(2)});
        }
      }
    }
  }

  // ---- 3. Relevance judgments and frequency boosts. ----
  BoostsByTerm boosts;
  std::vector<Topic> topics;
  topics.reserve(specs.size());
  for (const TopicSpec& spec : specs) {
    // Relevant-set sizes shrink with the collection (by sqrt(scale), a
    // compromise between judgment-count fidelity and keeping the boost
    // density per inverted list comparable to full scale).
    uint32_t max_relevant = std::max<uint32_t>(5, num_docs / 20);
    uint32_t scaled_relevant = std::max<uint32_t>(
        5, static_cast<uint32_t>(std::llround(
               spec.num_relevant * std::sqrt(std::min(1.0, options.scale)))));
    uint32_t num_relevant = std::min(scaled_relevant, max_relevant);
    std::vector<uint32_t> relevant =
        SampleDistinct(num_docs, num_relevant, &rng);
    std::sort(relevant.begin(), relevant.end());

    for (const BoostSpec& b : spec.boosts) {
      // Calibrated so that Smax on a strongly-boosted topic reaches the
      // magnitudes of the paper's Figure 4 (~10^4), which is what drives
      // the addition threshold above the within-list frequency mass.
      // Boosts are spread across most relevant documents (high inclusion
      // probability, moderate extras) so the score distribution is smooth
      // and ranking stays robust to evaluation-order differences.
      const double include_prob = std::min(0.97, 0.45 + 0.55 * b.strength);
      for (DocId d : relevant) {
        if (rng.NextDouble() < include_prob) {
          uint32_t extra = std::max<uint32_t>(
              1, static_cast<uint32_t>(std::llround(
                     b.strength * (16.0 + rng.NextBounded(24)))));
          boosts[b.term].push_back(Posting{d, extra});
        }
      }
    }

    Topic topic;
    topic.title = spec.title;
    for (const core::QueryTerm& qt : spec.terms) {
      topic.query.AddTerm(qt.term, qt.fq);
    }
    topic.relevant_docs = std::move(relevant);
    topics.push_back(std::move(topic));
  }
  MergeBoosts(&boosts);

  // ---- 4. Inverted-list generation, streamed into the builder. ----
  index::IndexBuilderOptions builder_options;
  builder_options.page_size = profile.page_size;
  builder_options.num_docs = num_docs;
  builder_options.order = options.list_order;
  index::IndexBuilder builder(builder_options);

  static const std::vector<Posting> kNoBoosts;
  for (TermId t = 0; t < num_terms; ++t) {
    const uint32_t ft = std::min(fts[t], num_docs);
    const double idf = std::log2(static_cast<double>(num_docs) /
                                 static_cast<double>(ft));
    const double mean = MeanFreqForIdf(idf);
    TruncatedGeometric freq_dist(1.0 / mean, 100);

    auto boost_it = boosts.find(t);
    const std::vector<Posting>& term_boosts =
        boost_it == boosts.end() ? kNoBoosts : boost_it->second;

    // Choose f_t distinct documents, forcing boosted documents in.
    std::vector<uint32_t> docs = SampleDistinct(num_docs, ft, &rng);
    if (!term_boosts.empty()) {
      std::unordered_set<DocId> chosen(docs.begin(), docs.end());
      std::unordered_set<DocId> boosted;
      boosted.reserve(term_boosts.size());
      for (const Posting& b : term_boosts) boosted.insert(b.doc);
      size_t cursor = 0;
      size_t forced = 0;
      for (const Posting& b : term_boosts) {
        if (forced >= docs.size()) break;
        if (chosen.count(b.doc) > 0) {
          ++forced;
          continue;
        }
        // Replace the next sampled non-boosted document.
        while (cursor < docs.size() && boosted.count(docs[cursor]) > 0) {
          ++cursor;
        }
        if (cursor >= docs.size()) break;
        chosen.erase(docs[cursor]);
        docs[cursor] = b.doc;
        chosen.insert(b.doc);
        ++cursor;
        ++forced;
      }
    }

    // Draw frequencies; boosted documents get their extra occurrences.
    std::unordered_map<DocId, uint32_t> extra;
    extra.reserve(term_boosts.size());
    for (const Posting& b : term_boosts) extra.emplace(b.doc, b.freq);

    std::vector<Posting> postings;
    postings.reserve(docs.size());
    for (DocId d : docs) {
      uint32_t f = freq_dist.Sample(&rng);
      auto it = extra.find(d);
      if (it != extra.end()) f += it->second;
      postings.push_back(Posting{d, f});
    }

    std::string name = t < num_stopwords
                           ? StrFormat("stop%03u", t)
                           : StrFormat("t%06u", t - num_stopwords);
    Result<TermId> id = builder.AddTermPostings(name, std::move(postings));
    if (!id.ok()) return id.status();
    if (id.value() != t) {
      return Status::Internal("term id assignment out of order");
    }
  }

  Result<index::InvertedIndex> index = std::move(builder).Build();
  if (!index.ok()) return index.status();
  return std::make_unique<SyntheticCorpus>(std::move(index).value(),
                                           std::move(topics),
                                           std::move(profile));
}

}  // namespace irbuf::corpus
