// Corpus persistence: serializes a SyntheticCorpus (profile + topics +
// index) so expensive full-scale generation happens once. The bench
// harness caches the corpus next to the build tree and every bench binary
// loads it in a second or two.

#ifndef IRBUF_CORPUS_CORPUS_IO_H_
#define IRBUF_CORPUS_CORPUS_IO_H_

#include <memory>
#include <string>

#include "corpus/synthetic_corpus.h"
#include "util/status.h"

namespace irbuf::corpus {

/// Format version written by SaveCorpus.
inline constexpr uint32_t kCorpusFormatVersion = 1;

/// Writes the corpus to `path` (overwrites).
Status SaveCorpus(const SyntheticCorpus& corpus, const std::string& path);

/// Reads a corpus previously written by SaveCorpus.
Result<std::unique_ptr<SyntheticCorpus>> LoadCorpus(
    const std::string& path);

/// Loads the corpus from `cache_path` if present; otherwise generates it
/// with `options` and saves it there (best-effort — generation succeeds
/// even if the save fails, e.g. on a read-only filesystem).
Result<std::unique_ptr<SyntheticCorpus>> LoadOrGenerateCorpus(
    const CorpusOptions& options, const std::string& cache_path);

}  // namespace irbuf::corpus

#endif  // IRBUF_CORPUS_CORPUS_IO_H_
