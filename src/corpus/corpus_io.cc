#include "corpus/corpus_io.h"

#include <cstdio>

#include "index/index_io.h"
#include "util/binary_io.h"

namespace irbuf::corpus {

namespace {

constexpr uint32_t kCorpusMagic = 0x43425249;  // "IRBC".

Status WriteProfile(const WsjProfile& profile, BinaryWriter* writer) {
  IRBUF_RETURN_NOT_OK(writer->WriteU32(profile.num_docs));
  IRBUF_RETURN_NOT_OK(writer->WriteU32(profile.num_terms));
  IRBUF_RETURN_NOT_OK(writer->WriteU64(profile.total_postings));
  IRBUF_RETURN_NOT_OK(writer->WriteU32(profile.page_size));
  IRBUF_RETURN_NOT_OK(writer->WriteU32(profile.multi_page_terms));
  IRBUF_RETURN_NOT_OK(
      writer->WriteU32(static_cast<uint32_t>(profile.groups.size())));
  for (const IdfGroup& g : profile.groups) {
    IRBUF_RETURN_NOT_OK(writer->WriteString(g.name));
    IRBUF_RETURN_NOT_OK(writer->WriteDouble(g.idf_lo));
    IRBUF_RETURN_NOT_OK(writer->WriteDouble(g.idf_hi));
    IRBUF_RETURN_NOT_OK(writer->WriteU32(g.pages_lo));
    IRBUF_RETURN_NOT_OK(writer->WriteU32(g.pages_hi));
    IRBUF_RETURN_NOT_OK(writer->WriteU32(g.num_terms));
    IRBUF_RETURN_NOT_OK(writer->WriteU32(g.ft_lo));
    IRBUF_RETURN_NOT_OK(writer->WriteU32(g.ft_hi));
  }
  return Status::OK();
}

Status ReadProfile(BinaryReader* reader, WsjProfile* profile) {
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&profile->num_docs));
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&profile->num_terms));
  IRBUF_RETURN_NOT_OK(reader->ReadU64(&profile->total_postings));
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&profile->page_size));
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&profile->multi_page_terms));
  uint32_t num_groups = 0;
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&num_groups));
  profile->groups.resize(num_groups);
  for (IdfGroup& g : profile->groups) {
    IRBUF_RETURN_NOT_OK(reader->ReadString(&g.name));
    IRBUF_RETURN_NOT_OK(reader->ReadDouble(&g.idf_lo));
    IRBUF_RETURN_NOT_OK(reader->ReadDouble(&g.idf_hi));
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&g.pages_lo));
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&g.pages_hi));
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&g.num_terms));
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&g.ft_lo));
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&g.ft_hi));
  }
  return Status::OK();
}

Status WriteTopic(const Topic& topic, BinaryWriter* writer) {
  IRBUF_RETURN_NOT_OK(writer->WriteString(topic.title));
  IRBUF_RETURN_NOT_OK(
      writer->WriteU32(static_cast<uint32_t>(topic.query.size())));
  for (const core::QueryTerm& qt : topic.query.terms()) {
    IRBUF_RETURN_NOT_OK(writer->WriteU32(qt.term));
    IRBUF_RETURN_NOT_OK(writer->WriteU32(qt.fq));
  }
  IRBUF_RETURN_NOT_OK(writer->WriteU32(
      static_cast<uint32_t>(topic.relevant_docs.size())));
  for (DocId d : topic.relevant_docs) {
    IRBUF_RETURN_NOT_OK(writer->WriteU32(d));
  }
  return Status::OK();
}

Status ReadTopic(BinaryReader* reader, Topic* topic) {
  IRBUF_RETURN_NOT_OK(reader->ReadString(&topic->title));
  uint32_t num_terms = 0;
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&num_terms));
  for (uint32_t i = 0; i < num_terms; ++i) {
    uint32_t term = 0, fq = 0;
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&term));
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&fq));
    topic->query.AddTerm(term, fq);
  }
  uint32_t num_relevant = 0;
  IRBUF_RETURN_NOT_OK(reader->ReadU32(&num_relevant));
  topic->relevant_docs.resize(num_relevant);
  for (uint32_t i = 0; i < num_relevant; ++i) {
    IRBUF_RETURN_NOT_OK(reader->ReadU32(&topic->relevant_docs[i]));
  }
  return Status::OK();
}

}  // namespace

Status SaveCorpus(const SyntheticCorpus& corpus, const std::string& path) {
  Result<BinaryWriter> writer = BinaryWriter::Open(path);
  if (!writer.ok()) return writer.status();
  BinaryWriter& w = writer.value();
  IRBUF_RETURN_NOT_OK(w.WriteU32(kCorpusMagic));
  IRBUF_RETURN_NOT_OK(w.WriteU32(kCorpusFormatVersion));
  IRBUF_RETURN_NOT_OK(WriteProfile(corpus.profile(), &w));
  IRBUF_RETURN_NOT_OK(
      w.WriteU32(static_cast<uint32_t>(corpus.topics().size())));
  for (const Topic& topic : corpus.topics()) {
    IRBUF_RETURN_NOT_OK(WriteTopic(topic, &w));
  }
  IRBUF_RETURN_NOT_OK(index::WriteIndex(corpus.index(), &w));
  return w.Close();
}

Result<std::unique_ptr<SyntheticCorpus>> LoadCorpus(
    const std::string& path) {
  Result<BinaryReader> reader = BinaryReader::Open(path);
  if (!reader.ok()) return reader.status();
  BinaryReader& r = reader.value();
  uint32_t magic = 0, version = 0;
  IRBUF_RETURN_NOT_OK(r.ReadU32(&magic));
  if (magic != kCorpusMagic) {
    return Status::InvalidArgument("not an irbuf corpus file");
  }
  IRBUF_RETURN_NOT_OK(r.ReadU32(&version));
  if (version != kCorpusFormatVersion) {
    return Status::InvalidArgument("unsupported corpus format version");
  }
  WsjProfile profile;
  IRBUF_RETURN_NOT_OK(ReadProfile(&r, &profile));
  uint32_t num_topics = 0;
  IRBUF_RETURN_NOT_OK(r.ReadU32(&num_topics));
  std::vector<Topic> topics(num_topics);
  for (Topic& topic : topics) {
    IRBUF_RETURN_NOT_OK(ReadTopic(&r, &topic));
  }
  Result<index::InvertedIndex> index = index::ReadIndex(&r);
  if (!index.ok()) return index.status();
  return std::make_unique<SyntheticCorpus>(
      std::move(index).value(), std::move(topics), std::move(profile));
}

Result<std::unique_ptr<SyntheticCorpus>> LoadOrGenerateCorpus(
    const CorpusOptions& options, const std::string& cache_path) {
  if (!cache_path.empty()) {
    Result<std::unique_ptr<SyntheticCorpus>> cached =
        LoadCorpus(cache_path);
    if (cached.ok()) return cached;
  }
  Result<std::unique_ptr<SyntheticCorpus>> generated =
      GenerateSyntheticCorpus(options);
  if (!generated.ok()) return generated;
  if (!cache_path.empty()) {
    // Best-effort: failure to cache must not fail the caller, but leave
    // no truncated file behind.
    Status saved = SaveCorpus(*generated.value(), cache_path);
    if (!saved.ok()) std::remove(cache_path.c_str());
  }
  return generated;
}

}  // namespace irbuf::corpus
