// Lexical analysis for document text: splits raw text into lower-cased
// alphabetic tokens, discarding non-words (punctuation, numbers, ...) as
// the paper's index construction does (Section 4.2).

#ifndef IRBUF_TEXT_TOKENIZER_H_
#define IRBUF_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace irbuf::text {

/// Streams tokens out of a text buffer without copying the input.
class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input) : input_(input), pos_(0) {}

  /// Advances to the next alphabetic token. Returns false at end of input.
  /// The token is written (lower-cased) into `*token`.
  bool Next(std::string* token);

 private:
  std::string_view input_;
  size_t pos_;
};

/// Convenience: all tokens of `input` in order.
std::vector<std::string> TokenizeAll(std::string_view input);

}  // namespace irbuf::text

#endif  // IRBUF_TEXT_TOKENIZER_H_
