// The Porter stemming algorithm (Porter, 1980), as cited by the paper via
// [Fra92]. Reduces English words to their stem: "computer", "computing"
// -> "comput"; "increases" -> "increas"; "investment" -> "invest".

#ifndef IRBUF_TEXT_PORTER_STEMMER_H_
#define IRBUF_TEXT_PORTER_STEMMER_H_

#include <string>

namespace irbuf::text {

/// Stems a single lower-case ASCII word in place and returns it.
/// Words shorter than 3 characters are returned unchanged, per Porter.
std::string PorterStem(std::string word);

}  // namespace irbuf::text

#endif  // IRBUF_TEXT_PORTER_STEMMER_H_
