#include "text/stopwords.h"

#include <algorithm>

namespace irbuf::text {

StopWordList::StopWordList(std::vector<std::string> words) {
  for (auto& w : words) words_.insert(std::move(w));
}

StopWordList StopWordList::DefaultEnglish() {
  // Compact SMART-style subset: the function words that dominate English
  // prose. Kept short deliberately; the paper itself used a frequency-based
  // list (see FromCollectionFrequency).
  static const char* kWords[] = {
      "a",     "about", "above", "after",  "again", "all",   "also",  "am",
      "an",    "and",   "any",   "are",    "as",    "at",    "be",    "been",
      "before", "being", "below", "between", "both", "but",  "by",    "can",
      "could", "did",   "do",    "does",   "doing", "down",  "during", "each",
      "few",   "for",   "from",  "further", "had",  "has",   "have",  "having",
      "he",    "her",   "here",  "hers",   "him",   "his",   "how",   "i",
      "if",    "in",    "into",  "is",     "it",    "its",   "just",  "me",
      "more",  "most",  "my",    "no",     "nor",   "not",   "now",   "of",
      "off",   "on",    "once",  "only",   "or",    "other", "our",   "out",
      "over",  "own",   "s",     "same",   "she",   "should", "so",   "some",
      "such",  "t",     "than",  "that",   "the",   "their", "them",  "then",
      "there", "these", "they",  "this",   "those", "through", "to",  "too",
      "under", "until", "up",    "very",   "was",   "we",    "were",  "what",
      "when",  "where", "which", "while",  "who",   "whom",  "why",   "will",
      "with",  "would", "you",   "your",   "yours",
  };
  std::vector<std::string> words(std::begin(kWords), std::end(kWords));
  return StopWordList(std::move(words));
}

StopWordList StopWordList::FromCollectionFrequency(
    const std::vector<std::pair<std::string, uint32_t>>& term_fts,
    size_t count) {
  std::vector<std::pair<std::string, uint32_t>> sorted = term_fts;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (sorted.size() > count) sorted.resize(count);
  std::vector<std::string> words;
  words.reserve(sorted.size());
  for (auto& [term, ft] : sorted) {
    (void)ft;
    words.push_back(term);
  }
  return StopWordList(std::move(words));
}

}  // namespace irbuf::text
