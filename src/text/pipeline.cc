#include "text/pipeline.h"

#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace irbuf::text {

AnalysisPipeline AnalysisPipeline::Default() {
  return AnalysisPipeline(StopWordList::DefaultEnglish(), PipelineOptions{});
}

std::vector<std::string> AnalysisPipeline::Analyze(
    std::string_view input) const {
  Tokenizer tok(input);
  std::vector<std::string> out;
  std::string t;
  while (tok.Next(&t)) {
    if (options_.remove_stopwords && stopwords_.Contains(t)) continue;
    out.push_back(options_.stem ? PorterStem(t) : t);
  }
  return out;
}

std::map<std::string, uint32_t> AnalysisPipeline::TermFrequencies(
    std::string_view input) const {
  std::map<std::string, uint32_t> freqs;
  for (auto& term : Analyze(input)) ++freqs[term];
  return freqs;
}

}  // namespace irbuf::text
