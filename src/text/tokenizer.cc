#include "text/tokenizer.h"

namespace irbuf::text {

namespace {

bool IsAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

char Lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

bool Tokenizer::Next(std::string* token) {
  // Skip separators.
  while (pos_ < input_.size() && !IsAlpha(input_[pos_])) ++pos_;
  if (pos_ >= input_.size()) return false;
  token->clear();
  // A token is a maximal run of letters, allowing internal apostrophes and
  // hyphens to be treated as separators (so "stock-market" -> two tokens,
  // matching the paper's removal of all non-words).
  while (pos_ < input_.size() && IsAlpha(input_[pos_])) {
    token->push_back(Lower(input_[pos_]));
    ++pos_;
  }
  return true;
}

std::vector<std::string> TokenizeAll(std::string_view input) {
  Tokenizer tok(input);
  std::vector<std::string> out;
  std::string t;
  while (tok.Next(&t)) out.push_back(t);
  return out;
}

}  // namespace irbuf::text
