// The full text-analysis pipeline the paper applies to documents and
// queries alike (Section 4.2): tokenize, drop non-words, lower-case,
// remove stop-words, Porter-stem.

#ifndef IRBUF_TEXT_PIPELINE_H_
#define IRBUF_TEXT_PIPELINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "text/stopwords.h"

namespace irbuf::text {

/// Configuration of the analysis pipeline.
struct PipelineOptions {
  /// Drop stop-words before stemming.
  bool remove_stopwords = true;
  /// Apply the Porter stemmer.
  bool stem = true;
};

/// Converts raw text into index/query terms.
class AnalysisPipeline {
 public:
  AnalysisPipeline(StopWordList stopwords, PipelineOptions options)
      : stopwords_(std::move(stopwords)), options_(options) {}

  /// Default pipeline: English stop-words, stemming on.
  static AnalysisPipeline Default();

  /// All terms of `input`, in order, after the full pipeline.
  std::vector<std::string> Analyze(std::string_view input) const;

  /// Term-frequency map of `input`: the (t, f_{d,t}) pairs of one document,
  /// or the (t, f_{q,t}) pairs of one query.
  std::map<std::string, uint32_t> TermFrequencies(
      std::string_view input) const;

  const StopWordList& stopwords() const { return stopwords_; }
  const PipelineOptions& options() const { return options_; }

 private:
  StopWordList stopwords_;
  PipelineOptions options_;
};

}  // namespace irbuf::text

#endif  // IRBUF_TEXT_PIPELINE_H_
