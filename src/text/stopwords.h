// Stop-word handling. The paper removes the 100 most frequent terms of the
// collection (those with highest document frequency ft) rather than using a
// canonical list; StopWordList supports both: construction from an explicit
// list and construction from collection statistics.

#ifndef IRBUF_TEXT_STOPWORDS_H_
#define IRBUF_TEXT_STOPWORDS_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace irbuf::text {

/// An immutable set of terms to drop during indexing and query parsing.
class StopWordList {
 public:
  StopWordList() = default;
  explicit StopWordList(std::vector<std::string> words);

  /// The classic English stop-word list (a compact SMART-style subset).
  static StopWordList DefaultEnglish();

  /// Builds the paper's list: the `count` terms with highest document
  /// frequency. `term_fts` holds (term, ft) pairs.
  static StopWordList FromCollectionFrequency(
      const std::vector<std::pair<std::string, uint32_t>>& term_fts,
      size_t count);

  bool Contains(const std::string& term) const {
    return words_.count(term) > 0;
  }
  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace irbuf::text

#endif  // IRBUF_TEXT_STOPWORDS_H_
