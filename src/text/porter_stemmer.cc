// Faithful implementation of M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980. Structure follows the reference
// implementation: a working buffer b[0..k], a trailing-stem mark j, and
// the five-step cascade of suffix rules.

#include "text/porter_stemmer.h"

#include <cstring>

namespace irbuf::text {

namespace {

class Stemmer {
 public:
  explicit Stemmer(std::string word) : b_(std::move(word)) {
    k_ = static_cast<int>(b_.size()) - 1;
    j_ = 0;
  }

  std::string Run() {
    if (k_ > 1) {  // Porter: strings of length 1 or 2 are left as-is.
      Step1ab();
      Step1c();
      Step2();
      Step3();
      Step4();
      Step5();
    }
    b_.resize(static_cast<size_t>(k_) + 1);
    return std::move(b_);
  }

 private:
  // True if b_[i] is a consonant.
  bool Cons(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return (i == 0) ? true : !Cons(i - 1);
      default:
        return true;
    }
  }

  // Measures the number of consonant(-vowel-consonant) sequences in
  // b_[0..j]. m() == 0 for "tr", "ee"; 1 for "trouble", "oats"; 2 for
  // "private", "oaten"; ...
  int M() const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j_) return n;
      if (!Cons(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j_) return n;
        if (Cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j_) return n;
        if (!Cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // True if b_[0..j] contains a vowel.
  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!Cons(i)) return true;
    }
    return false;
  }

  // True if b_[i-1..i] is a double consonant.
  bool DoubleC(int i) const {
    if (i < 1) return false;
    if (b_[static_cast<size_t>(i)] != b_[static_cast<size_t>(i - 1)]) {
      return false;
    }
    return Cons(i);
  }

  // True if b_[i-2..i] is consonant-vowel-consonant and the final consonant
  // is not w, x or y. Restores an e at the end of short words, so that
  // cav(e), lov(e), hop(e) keep their stems distinct from others.
  bool Cvc(int i) const {
    if (i < 2 || !Cons(i) || Cons(i - 1) || !Cons(i - 2)) return false;
    char ch = b_[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  // True if b_ ends with string s; sets j_ to the preceding position.
  bool Ends(const char* s) {
    int length = static_cast<int>(std::strlen(s));
    if (length > k_ + 1) return false;
    if (std::memcmp(b_.data() + k_ - length + 1, s,
                    static_cast<size_t>(length)) != 0) {
      return false;
    }
    j_ = k_ - length;
    return true;
  }

  // Replaces b_[j+1..k] with s and updates k_.
  void SetTo(const char* s) {
    int length = static_cast<int>(std::strlen(s));
    b_.resize(static_cast<size_t>(j_ + 1));
    b_.append(s, static_cast<size_t>(length));
    k_ = j_ + length;
  }

  void R(const char* s) {
    if (M() > 0) SetTo(s);
  }

  // Step 1ab removes plurals and -ed/-ing:
  //   caresses -> caress, ponies -> poni, feed -> feed, agreed -> agree,
  //   plastered -> plaster, motoring -> motor, sing -> sing.
  void Step1ab() {
    if (b_[static_cast<size_t>(k_)] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (b_[static_cast<size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (M() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleC(k_)) {
        char ch = b_[static_cast<size_t>(k_)];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (M() == 1 && Cvc(k_)) {
        j_ = k_;  // SetTo appends after position j_.
        SetTo("e");
      }
    }
  }

  // Step 1c: terminal y -> i when there is another vowel in the stem.
  void Step1c() {
    if (Ends("y") && VowelInStem()) {
      b_[static_cast<size_t>(k_)] = 'i';
    }
  }

  // Step 2 maps double suffixes to single ones (-ization -> -ize, ...)
  // when M() > 0.
  void Step2() {
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("ational")) { R("ate"); break; }
        if (Ends("tional")) { R("tion"); break; }
        break;
      case 'c':
        if (Ends("enci")) { R("ence"); break; }
        if (Ends("anci")) { R("ance"); break; }
        break;
      case 'e':
        if (Ends("izer")) { R("ize"); break; }
        break;
      case 'l':
        if (Ends("bli")) { R("ble"); break; }  // DEPARTURE: -abli in 1980.
        if (Ends("alli")) { R("al"); break; }
        if (Ends("entli")) { R("ent"); break; }
        if (Ends("eli")) { R("e"); break; }
        if (Ends("ousli")) { R("ous"); break; }
        break;
      case 'o':
        if (Ends("ization")) { R("ize"); break; }
        if (Ends("ation")) { R("ate"); break; }
        if (Ends("ator")) { R("ate"); break; }
        break;
      case 's':
        if (Ends("alism")) { R("al"); break; }
        if (Ends("iveness")) { R("ive"); break; }
        if (Ends("fulness")) { R("ful"); break; }
        if (Ends("ousness")) { R("ous"); break; }
        break;
      case 't':
        if (Ends("aliti")) { R("al"); break; }
        if (Ends("iviti")) { R("ive"); break; }
        if (Ends("biliti")) { R("ble"); break; }
        break;
      case 'g':  // DEPARTURE in the reference implementation.
        if (Ends("logi")) { R("log"); break; }
        break;
      default:
        break;
    }
  }

  // Step 3 handles -ic-, -full, -ness etc., similarly to Step 2.
  void Step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (Ends("icate")) { R("ic"); break; }
        if (Ends("ative")) { R(""); break; }
        if (Ends("alize")) { R("al"); break; }
        break;
      case 'i':
        if (Ends("iciti")) { R("ic"); break; }
        break;
      case 'l':
        if (Ends("ical")) { R("ic"); break; }
        if (Ends("ful")) { R(""); break; }
        break;
      case 's':
        if (Ends("ness")) { R(""); break; }
        break;
      default:
        break;
    }
  }

  // Step 4 removes -ant, -ence, etc. in context <c>vcvc<v> (M() > 1).
  void Step4() {
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance")) break;
        if (Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able")) break;
        if (Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant")) break;
        if (Ends("ement")) break;
        if (Ends("ment")) break;
        if (Ends("ent")) break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't')) {
          break;
        }
        if (Ends("ou")) break;  // For -ous.
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate")) break;
        if (Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (M() > 1) k_ = j_;
  }

  // Step 5 removes a final -e if M() > 1, and changes -ll to -l if M() > 1.
  void Step5() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      int a = M();
      if (a > 1 || (a == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleC(k_) && M() > 1) --k_;
  }

  std::string b_;
  int k_;  // Index of the last character of the current word.
  int j_;  // Index of the last character of the stem during rule matching.
};

}  // namespace

std::string PorterStem(std::string word) {
  if (word.size() < 3) return word;
  return Stemmer(std::move(word)).Run();
}

}  // namespace irbuf::text
