// Small string and table-formatting helpers shared by the bench harness
// and examples.

#ifndef IRBUF_UTIL_STR_H_
#define IRBUF_UTIL_STR_H_

#include <string>
#include <vector>

namespace irbuf {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on any of the characters in `delims`, dropping empty pieces.
std::vector<std::string> Split(const std::string& s,
                               const std::string& delims);

/// Lower-cases ASCII characters in place and returns the string.
std::string ToLowerAscii(std::string s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Fixed-width ASCII table writer for bench output: aligns columns and
/// prints a header rule, mirroring the paper's table layout.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with padded columns.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace irbuf

#endif  // IRBUF_UTIL_STR_H_
