// Minimal little-endian binary (de)serialization over std::FILE, used by
// the index and corpus persistence formats. Every Read* checks for
// truncation and reports IOError.

#ifndef IRBUF_UTIL_BINARY_IO_H_
#define IRBUF_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace irbuf {

/// Buffered binary writer owning a FILE handle.
class BinaryWriter {
 public:
  /// Opens `path` for writing (truncates).
  static Result<BinaryWriter> Open(const std::string& path);

  BinaryWriter(BinaryWriter&& other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }
  BinaryWriter& operator=(BinaryWriter&& other) noexcept;
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;
  ~BinaryWriter();

  Status WriteU32(uint32_t value);
  Status WriteU64(uint64_t value);
  Status WriteDouble(double value);
  Status WriteString(const std::string& value);
  Status WriteBytes(const std::vector<uint8_t>& bytes);

  /// Flushes and closes; must be called to guarantee durability.
  Status Close();

 private:
  explicit BinaryWriter(std::FILE* file) : file_(file) {}
  Status WriteRaw(const void* data, size_t size);

  std::FILE* file_;
};

/// Buffered binary reader owning a FILE handle.
class BinaryReader {
 public:
  static Result<BinaryReader> Open(const std::string& path);

  BinaryReader(BinaryReader&& other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }
  BinaryReader& operator=(BinaryReader&& other) noexcept;
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;
  ~BinaryReader();

  Status ReadU32(uint32_t* value);
  Status ReadU64(uint64_t* value);
  Status ReadDouble(double* value);
  Status ReadString(std::string* value);
  Status ReadBytes(std::vector<uint8_t>* bytes);

  /// True when the read cursor is at end of file.
  bool AtEof();

 private:
  explicit BinaryReader(std::FILE* file) : file_(file) {}
  Status ReadRaw(void* data, size_t size);

  std::FILE* file_;
};

}  // namespace irbuf

#endif  // IRBUF_UTIL_BINARY_IO_H_
