// Runtime contract checks mirroring the statically-annotated invariants:
// IRBUF_DCHECK aborts with a message when a documented invariant is
// violated at runtime (pin-count underflow, eviction of a pinned frame,
// stats conservation). The checks are single comparisons on paths that
// already take a lock or an atomic RMW, so they are compiled in by
// default (CMake option IRBUF_DCHECKS, ON); -DIRBUF_DCHECKS=OFF strips
// them entirely for benchmarking the last percent.
//
// A failed check is a bug in irbuf, never a recoverable input error —
// use util::Status for those.

#ifndef IRBUF_UTIL_DCHECK_H_
#define IRBUF_UTIL_DCHECK_H_

#include <cstdio>
#include <cstdlib>

#if defined(IRBUF_ENABLE_DCHECKS)

/// Aborts with `msg` when `cond` is false. `msg` is a plain C string —
/// the check sites are hot paths, so no formatting or allocation.
#define IRBUF_DCHECK(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "IRBUF_DCHECK failed at %s:%d: %s: %s\n",  \
                   __FILE__, __LINE__, #cond, msg);                   \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

#else

#define IRBUF_DCHECK(cond, msg) \
  do {                          \
  } while (0)

#endif  // IRBUF_ENABLE_DCHECKS

#endif  // IRBUF_UTIL_DCHECK_H_
