// The one monotonic nanosecond clock the instrumentation layers share:
// span timing (obs/span.h), lock-contention measurement (util/mutex.h)
// and the serving path's latency accounting all read MonotonicNowNs so
// their timestamps live on a single timebase and a Chrome trace built
// from them lines up. fault::MonotonicNowUs remains the coarser
// microsecond view used by deadlines and backoff schedules.
//
// Hot-path discipline: timing reads are only ever taken behind an
// enabled-check (a null SpanRecorder / uninstrumented Mutex never reads
// the clock), and the `raw-clock` lint rule keeps ad-hoc
// steady_clock::now() calls out of the hot subsystems so every timing
// source stays auditable here.

#ifndef IRBUF_UTIL_MONOTONIC_CLOCK_H_
#define IRBUF_UTIL_MONOTONIC_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace irbuf {

/// Monotonic nanoseconds since an arbitrary (per-process) epoch.
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace irbuf

#endif  // IRBUF_UTIL_MONOTONIC_CLOCK_H_
