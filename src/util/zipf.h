// Skewed-distribution samplers used by the synthetic corpus generator.
//
// Term popularity in natural-language collections follows a Zipf law, and
// within-document term frequencies are heavily skewed towards low values
// (the property Persin's filtering thresholds exploit). These samplers
// provide both shapes deterministically.

#ifndef IRBUF_UTIL_ZIPF_H_
#define IRBUF_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace irbuf {

/// Samples ranks 1..n with P(rank = k) proportional to 1 / k^s.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger (1996),
/// which is O(1) per sample with no table precomputation.
class ZipfSampler {
 public:
  /// `n` is the number of ranks, `s` the skew exponent (s > 0, s != 1 is
  /// handled as well as s == 1).
  ZipfSampler(uint64_t n, double s);

  /// Draws a rank in [1, n].
  uint64_t Sample(Pcg32* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

/// Samples integers >= 1 with a geometric tail: P(k) ~ (1-p)^(k-1) * p,
/// truncated at `max_value`. Models within-document term frequencies.
class TruncatedGeometric {
 public:
  /// `p` in (0, 1]; larger p concentrates mass at 1.
  TruncatedGeometric(double p, uint32_t max_value);

  uint32_t Sample(Pcg32* rng) const;

  double p() const { return p_; }
  uint32_t max_value() const { return max_value_; }

 private:
  double p_;
  uint32_t max_value_;
};

/// Draws `k` distinct values from [0, n) uniformly, in O(k) expected time
/// (Floyd's algorithm). Result is unsorted.
std::vector<uint32_t> SampleDistinct(uint32_t n, uint32_t k, Pcg32* rng);

}  // namespace irbuf

#endif  // IRBUF_UTIL_ZIPF_H_
