#include "util/str.h"

#include <cstdarg>
#include <cstdio>

namespace irbuf {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s,
                               const std::string& delims) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (delims.find(c) != std::string::npos) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string ToLowerAscii(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += "  ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  size_t rule_len = 0;
  for (size_t i = 0; i < widths.size(); ++i) {
    rule_len += widths[i] + (i > 0 ? 2 : 0);
  }
  out.append(rule_len, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace irbuf
