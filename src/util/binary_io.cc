#include "util/binary_io.h"

#include <cstring>

#include "util/str.h"

namespace irbuf {

namespace {

// All multi-byte values are stored little-endian; on the (ubiquitous)
// little-endian hosts this is a straight memcpy.
template <typename T>
void ToLittleEndian(T value, uint8_t* out) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

template <typename T>
T FromLittleEndian(const uint8_t* in) {
  T value = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(in[i]) << (8 * i);
  }
  return value;
}

}  // namespace

Result<BinaryWriter> BinaryWriter::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError(StrFormat("cannot open '%s' for writing",
                                     path.c_str()));
  }
  return BinaryWriter(file);
}

BinaryWriter& BinaryWriter::operator=(BinaryWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryWriter::WriteRaw(const void* data, size_t size) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer closed");
  if (std::fwrite(data, 1, size, file_) != size) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

Status BinaryWriter::WriteU32(uint32_t value) {
  uint8_t buf[4];
  ToLittleEndian(value, buf);
  return WriteRaw(buf, sizeof(buf));
}

Status BinaryWriter::WriteU64(uint64_t value) {
  uint8_t buf[8];
  ToLittleEndian(value, buf);
  return WriteRaw(buf, sizeof(buf));
}

Status BinaryWriter::WriteDouble(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return WriteU64(bits);
}

Status BinaryWriter::WriteString(const std::string& value) {
  IRBUF_RETURN_NOT_OK(WriteU32(static_cast<uint32_t>(value.size())));
  return WriteRaw(value.data(), value.size());
}

Status BinaryWriter::WriteBytes(const std::vector<uint8_t>& bytes) {
  IRBUF_RETURN_NOT_OK(WriteU32(static_cast<uint32_t>(bytes.size())));
  return WriteRaw(bytes.data(), bytes.size());
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return Status::FailedPrecondition("already closed");
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("close failed");
  return Status::OK();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError(StrFormat("cannot open '%s' for reading",
                                     path.c_str()));
  }
  return BinaryReader(file);
}

BinaryReader& BinaryReader::operator=(BinaryReader&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryReader::ReadRaw(void* data, size_t size) {
  if (file_ == nullptr) return Status::FailedPrecondition("reader closed");
  if (std::fread(data, 1, size, file_) != size) {
    return Status::IOError("truncated file");
  }
  return Status::OK();
}

Status BinaryReader::ReadU32(uint32_t* value) {
  uint8_t buf[4];
  IRBUF_RETURN_NOT_OK(ReadRaw(buf, sizeof(buf)));
  *value = FromLittleEndian<uint32_t>(buf);
  return Status::OK();
}

Status BinaryReader::ReadU64(uint64_t* value) {
  uint8_t buf[8];
  IRBUF_RETURN_NOT_OK(ReadRaw(buf, sizeof(buf)));
  *value = FromLittleEndian<uint64_t>(buf);
  return Status::OK();
}

Status BinaryReader::ReadDouble(double* value) {
  uint64_t bits = 0;
  IRBUF_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(value, &bits, sizeof(*value));
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* value) {
  uint32_t size = 0;
  IRBUF_RETURN_NOT_OK(ReadU32(&size));
  value->resize(size);
  return size == 0 ? Status::OK() : ReadRaw(value->data(), size);
}

Status BinaryReader::ReadBytes(std::vector<uint8_t>* bytes) {
  uint32_t size = 0;
  IRBUF_RETURN_NOT_OK(ReadU32(&size));
  bytes->resize(size);
  return size == 0 ? Status::OK() : ReadRaw(bytes->data(), size);
}

bool BinaryReader::AtEof() {
  if (file_ == nullptr) return true;
  int c = std::fgetc(file_);
  if (c == EOF) return true;
  std::ungetc(c, file_);
  return false;
}

}  // namespace irbuf
