#include "util/zipf.h"

#include <cmath>
#include <unordered_set>

namespace irbuf {

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

// H(x) is an antiderivative of x^-s (with the s == 1 special case).
double ZipfSampler::H(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfSampler::Sample(Pcg32* rng) const {
  for (;;) {
    double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (k - x <= threshold_) return k;
    if (u >= H(static_cast<double>(k) + 0.5) -
                 std::pow(static_cast<double>(k), -s_)) {
      return k;
    }
  }
}

TruncatedGeometric::TruncatedGeometric(double p, uint32_t max_value)
    : p_(p), max_value_(max_value == 0 ? 1 : max_value) {}

uint32_t TruncatedGeometric::Sample(Pcg32* rng) const {
  if (p_ >= 1.0) return 1;
  // Inverse-CDF sampling of the untruncated geometric, then clamp.
  double u = rng->NextDouble();
  // Guard against log(0).
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  double k = std::floor(std::log1p(-u) / std::log1p(-p_)) + 1.0;
  if (k < 1.0) k = 1.0;
  if (k > static_cast<double>(max_value_)) k = static_cast<double>(max_value_);
  return static_cast<uint32_t>(k);
}

std::vector<uint32_t> SampleDistinct(uint32_t n, uint32_t k, Pcg32* rng) {
  if (k >= n) {
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t unless
  // already present, in which case insert j.
  std::unordered_set<uint32_t> chosen;
  chosen.reserve(k * 2);
  std::vector<uint32_t> out;
  out.reserve(k);
  for (uint32_t j = n - k; j < n; ++j) {
    uint32_t t = rng->NextBounded(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace irbuf
