// Compiler-attribute macros that are not thread-safety related (those
// live in util/thread_annotations.h).
//
// IRBUF_LIFETIME_BOUND expands to [[clang::lifetimebound]] under
// clang: placed after a member function's cv/ref qualifiers it marks
// the implicit object parameter, so the compiler warns when the
// returned pointer/reference outlives the object it was derived
// from — the simplest pin-escape cases (`auto* p =
// pool.FetchPinned(id).value().get();` keeps `p` after the temporary
// pin unpins the frame) become -Wdangling-gsl/-Wdangling diagnostics
// at the call site. The deeper flow-sensitive cases are covered by
// tools/analyze/irbuf_analyzer.py's pin-escape check.

#ifndef IRBUF_UTIL_ATTRIBUTES_H_
#define IRBUF_UTIL_ATTRIBUTES_H_

#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::lifetimebound)
#define IRBUF_LIFETIME_BOUND [[clang::lifetimebound]]
#endif
#endif

#ifndef IRBUF_LIFETIME_BOUND
#define IRBUF_LIFETIME_BOUND  // no-op off clang
#endif

#endif  // IRBUF_UTIL_ATTRIBUTES_H_
