// Deterministic pseudo-random number generation. All randomness in irbuf
// (corpus synthesis, workload construction) flows through Pcg32 so that
// every experiment is reproducible bit-for-bit from its seed.

#ifndef IRBUF_UTIL_RNG_H_
#define IRBUF_UTIL_RNG_H_

#include <cstdint>

namespace irbuf {

/// PCG-XSH-RR 64/32 generator (O'Neill 2014). Small state, excellent
/// statistical quality, and fully deterministic across platforms.
class Pcg32 {
 public:
  /// Seeds the generator; two generators with equal (seed, stream) produce
  /// identical output sequences.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    NextU32();
    state_ += seed;
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform in [0, bound). Uses Lemire-style rejection to avoid modulo bias.
  uint32_t NextBounded(uint32_t bound) {
    if (bound <= 1) return 0;
    uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    uint64_t hi = NextU32();
    uint64_t lo = NextU32();
    uint64_t bits = (hi << 21) ^ (lo >> 11);  // 53 significant bits
    return static_cast<double>(bits & ((1ULL << 53) - 1)) /
           static_cast<double>(1ULL << 53);
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace irbuf

#endif  // IRBUF_UTIL_RNG_H_
