// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable that carry the Clang thread-safety-analysis
// attributes from util/thread_annotations.h. The standard-library types
// are unannotated, so the analysis cannot see through std::lock_guard or
// std::unique_lock; routing all locking in the concurrent subsystems
// (serve/, obs/) through these wrappers is what makes -Werror=
// thread-safety able to prove the GUARDED_BY contracts.
//
// Zero-cost: every method is an inline forward to the std type; there is
// no extra state beyond the wrapped primitive.

#ifndef IRBUF_UTIL_MUTEX_H_
#define IRBUF_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace irbuf {

class CondVar;

/// A std::mutex the thread-safety analysis can track. Prefer the RAII
/// MutexLock to calling Lock/Unlock directly.
class IRBUF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() IRBUF_ACQUIRE() { mu_.lock(); }
  void Unlock() IRBUF_RELEASE() { mu_.unlock(); }
  bool TryLock() IRBUF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock on a Mutex, with an early-release escape for the
/// unlock-then-relock patterns a condition-variable-free fast path
/// sometimes wants. Equivalent to std::unique_lock<std::mutex> but
/// visible to the analysis.
class IRBUF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IRBUF_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() IRBUF_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the lock before the end of scope.
  void Unlock() IRBUF_RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

  /// Re-acquires after an early Unlock.
  void Lock() IRBUF_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable used with Mutex. Wait atomically releases the
/// mutex and re-acquires it before returning, exactly like
/// std::condition_variable; the REQUIRES annotation models the net
/// effect (held on entry, held on exit). Spurious wakeups are possible:
/// always wait in a `while (!condition)` loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) IRBUF_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller's MutexLock still owns the mutex.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace irbuf

#endif  // IRBUF_UTIL_MUTEX_H_
