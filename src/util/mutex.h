// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable that carry the Clang thread-safety-analysis
// attributes from util/thread_annotations.h. The standard-library types
// are unannotated, so the analysis cannot see through std::lock_guard or
// std::unique_lock; routing all locking in the concurrent subsystems
// (serve/, obs/) through these wrappers is what makes -Werror=
// thread-safety able to prove the GUARDED_BY contracts.
//
// Contention profiling: a Mutex is zero-cost by default (every method an
// inline forward to the std type) and can opt into wait-time measurement
// with TrackContention(&stats). An instrumented Lock first TryLocks;
// only when the acquisition actually blocks does it read the clock, take
// the slow std lock, and record the wait into the MutexWaitStats'
// lock-free log2 histogram — so the uncontended instrumented path costs
// one try_lock plus a relaxed counter bump, and the *uninstrumented*
// path costs a single predictable null-check branch over the seed
// implementation (pinned by the BM_MutexLock pair in bench_micro).
// Contention numbers answer the question the serve benches keep asking:
// what share of multi-worker wall time is spent waiting on the pool's
// policy latch versus actually working.

#ifndef IRBUF_UTIL_MUTEX_H_
#define IRBUF_UTIL_MUTEX_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/monotonic_clock.h"
#include "util/thread_annotations.h"

namespace irbuf {

class CondVar;

/// Lock-free wait accounting for one named mutex (or one named *family*
/// of mutexes — the pool's 16 page-table stripes share a single stats
/// object, since the question is "how long do fetches wait on a stripe",
/// not "which stripe"). All fields are relaxed atomics: recording never
/// locks, and snapshots are exact whenever the writers are quiesced
/// (the benches' reporting pattern).
///
/// Wait times land in log2 microsecond buckets: bucket 0 holds waits
/// under 1 us, bucket i >= 1 holds waits in [2^(i-1), 2^i) us, and the
/// last bucket catches everything from ~0.5 s up. That spans the whole
/// interesting range (a CAS-speed latch handoff to a disk-length stall)
/// in 21 counters.
class MutexWaitStats {
 public:
  static constexpr size_t kBuckets = 21;

  /// `name` must be a static-storage string (it is held, not copied).
  explicit MutexWaitStats(const char* name) : name_(name) {}

  MutexWaitStats(const MutexWaitStats&) = delete;
  MutexWaitStats& operator=(const MutexWaitStats&) = delete;

  // --- Recording (called by instrumented Mutex methods only) ---

  void RecordUncontended() {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordWait(uint64_t wait_ns) {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    contended_.fetch_add(1, std::memory_order_relaxed);
    wait_ns_total_.fetch_add(wait_ns, std::memory_order_relaxed);
    buckets_[BucketFor(wait_ns)].fetch_add(1, std::memory_order_relaxed);
    if (observer_ != nullptr) observer_(observer_ctx_, wait_ns);
  }

  // --- Reading ---

  const char* name() const { return name_; }
  uint64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  /// Acquisitions that actually blocked (try_lock failed).
  uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }
  uint64_t wait_ns_total() const {
    return wait_ns_total_.load(std::memory_order_relaxed);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Inclusive lower bound of bucket `i`, in microseconds.
  static uint64_t BucketLowerBoundUs(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }

  /// Bucket index for a wait of `wait_ns`.
  static size_t BucketFor(uint64_t wait_ns) {
    const uint64_t us = wait_ns / 1000;
    size_t b = 0;
    while (b + 1 < kBuckets && us >= (uint64_t{1} << b)) ++b;
    return us == 0 ? 0 : b;
  }

  /// Installs a hook called (with `ctx`) on every *contended*
  /// acquisition, after the counters were bumped — the bridge the obs
  /// layer uses to mirror waits into a MetricsRegistry histogram without
  /// util depending on obs. Install before the mutex sees concurrent
  /// traffic; the hook runs on the waiter's thread and must be
  /// thread-safe and cheap.
  void SetObserver(void (*observer)(void*, uint64_t wait_ns), void* ctx) {
    observer_ = observer;
    observer_ctx_ = ctx;
  }

  void Reset() {
    acquisitions_.store(0, std::memory_order_relaxed);
    contended_.store(0, std::memory_order_relaxed);
    wait_ns_total_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  const char* name_;
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> contended_{0};
  std::atomic<uint64_t> wait_ns_total_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  void (*observer_)(void*, uint64_t) = nullptr;
  void* observer_ctx_ = nullptr;
};

/// A std::mutex the thread-safety analysis can track. Prefer the RAII
/// MutexLock to calling Lock/Unlock directly.
class IRBUF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() IRBUF_ACQUIRE() {
    MutexWaitStats* stats = stats_.load(std::memory_order_relaxed);
    if (stats == nullptr) {
      mu_.lock();
      return;
    }
    LockInstrumented(stats);
  }
  void Unlock() IRBUF_RELEASE() { mu_.unlock(); }
  bool TryLock() IRBUF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Opts this mutex into contention profiling: subsequent blocking
  /// Locks record their wait into `stats` (nullptr reverts to the
  /// unprofiled fast path). Several mutexes may share one stats object.
  /// Install while the mutex is not under concurrent traffic (wiring
  /// time, like BindMetrics); the pointer itself is atomic so a late
  /// reader sees either profiled or unprofiled, never a torn state.
  /// `stats` must outlive the mutex's last Lock.
  void TrackContention(MutexWaitStats* stats) {
    stats_.store(stats, std::memory_order_relaxed);
  }

 private:
  friend class CondVar;

  /// The profiled path: wait time is measured only when the acquisition
  /// actually blocks, so uncontended profiled locks never read a clock.
  void LockInstrumented(MutexWaitStats* stats) {
    if (mu_.try_lock()) {
      stats->RecordUncontended();
      return;
    }
    const uint64_t start_ns = MonotonicNowNs();
    mu_.lock();
    stats->RecordWait(MonotonicNowNs() - start_ns);
  }

  std::mutex mu_;
  std::atomic<MutexWaitStats*> stats_{nullptr};
};

/// RAII lock on a Mutex, with an early-release escape for the
/// unlock-then-relock patterns a condition-variable-free fast path
/// sometimes wants. Equivalent to std::unique_lock<std::mutex> but
/// visible to the analysis.
class IRBUF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IRBUF_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() IRBUF_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the lock before the end of scope.
  void Unlock() IRBUF_RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

  /// Re-acquires after an early Unlock.
  void Lock() IRBUF_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable used with Mutex. Wait atomically releases the
/// mutex and re-acquires it before returning, exactly like
/// std::condition_variable; the REQUIRES annotation models the net
/// effect (held on entry, held on exit). Spurious wakeups are possible:
/// always wait in a `while (!condition)` loop.
///
/// Wait time spent here is *condition* wait (waiting for work), not lock
/// contention, so it is deliberately not recorded in MutexWaitStats —
/// mixing the two would make an idle worker pool look like a contended
/// one.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) IRBUF_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller's MutexLock still owns the mutex.
  }

  /// Bounded wait: returns false when `timeout_us` elapsed without a
  /// notification, true otherwise (including spurious wakeups — always
  /// re-check the condition either way). The mutex is held on entry and
  /// on exit exactly like Wait. This is what lets a scatter-gather
  /// coordinator abandon a straggling shard instead of blocking on it
  /// forever (shard::ShardedEngine's soft deadline).
  bool WaitFor(Mutex& mu, uint64_t timeout_us) IRBUF_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::microseconds(timeout_us));
    lock.release();  // The caller's MutexLock still owns the mutex.
    return status != std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace irbuf

#endif  // IRBUF_UTIL_MUTEX_H_
