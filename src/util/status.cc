#include "util/status.h"

namespace irbuf {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorrupted:
      return "Corrupted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kShedWhileQueued:
      return "ShedWhileQueued";
  }
  return "Unknown";
}

bool StatusCodeIsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kCorrupted;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace irbuf
