// Clang thread-safety-analysis attribute macros (no-ops on other
// compilers). Annotating a mutex-protected member with
// IRBUF_GUARDED_BY(mu) and a locking function with IRBUF_ACQUIRE(mu) /
// IRBUF_RELEASE(mu) turns the locking discipline documented in comments
// into contracts the compiler enforces: building with Clang and
// -Werror=thread-safety (CMake does this automatically, see the
// static-analysis section of DESIGN.md) rejects any access to a guarded
// member without its lock held, any double-acquire, and any
// REQUIRES/EXCLUDES violation.
//
// The macro set mirrors the Clang documentation's canonical
// mutex.h; only the subset irbuf uses is defined. The annotated
// capability types themselves (Mutex, MutexLock, CondVar) live in
// util/mutex.h.

#ifndef IRBUF_UTIL_THREAD_ANNOTATIONS_H_
#define IRBUF_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define IRBUF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IRBUF_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares a type to be a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex").
#define IRBUF_CAPABILITY(x) IRBUF_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define IRBUF_SCOPED_CAPABILITY IRBUF_THREAD_ANNOTATION(scoped_lockable)

/// The member may only be read or written while holding the given
/// mutex(es).
#define IRBUF_GUARDED_BY(x) IRBUF_THREAD_ANNOTATION(guarded_by(x))

/// The pointed-to data may only be accessed while holding the mutex
/// (the pointer itself is unguarded).
#define IRBUF_PT_GUARDED_BY(x) IRBUF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Callers must hold the given mutex(es) before calling; the function
/// does not release them.
#define IRBUF_REQUIRES(...) \
  IRBUF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Callers must NOT hold the given mutex(es) when calling (the function
/// acquires them itself, or acquiring them here would invert the
/// documented lock order).
#define IRBUF_EXCLUDES(...) \
  IRBUF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define IRBUF_ACQUIRE(...) \
  IRBUF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the capability, which must be held on entry.
#define IRBUF_RELEASE(...) \
  IRBUF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define IRBUF_TRY_ACQUIRE(...) \
  IRBUF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Lock-ordering documentation: this mutex must be acquired before the
/// named ones.
#define IRBUF_ACQUIRED_BEFORE(...) \
  IRBUF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Lock-ordering documentation: this mutex must be acquired after the
/// named ones.
#define IRBUF_ACQUIRED_AFTER(...) \
  IRBUF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define IRBUF_RETURN_CAPABILITY(x) \
  IRBUF_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Use only with
/// a comment explaining why the discipline cannot be expressed.
#define IRBUF_NO_THREAD_SAFETY_ANALYSIS \
  IRBUF_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // IRBUF_UTIL_THREAD_ANNOTATIONS_H_
