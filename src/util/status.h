// Status / Result error handling in the style of Apache Arrow and RocksDB:
// fallible operations return a Status (or a Result<T> carrying a value),
// never throw on expected failure paths.

#ifndef IRBUF_UTIL_STATUS_H_
#define IRBUF_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "util/attributes.h"

namespace irbuf {

/// Machine-readable category of a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kIOError,
  /// Transient failure (device hiccup, circuit breaker open): the same
  /// operation may succeed if retried after a backoff.
  kUnavailable,
  /// Data-integrity failure: the bytes read do not match their stored
  /// checksum. Retryable when the corruption happened in flight;
  /// permanent media corruption keeps failing until retries exhaust.
  kCorrupted,
  /// A per-operation deadline elapsed before the operation finished;
  /// partial results may still be usable (see core::EvalResult).
  kDeadlineExceeded,
  /// Overload control dropped the query from the admission queue before
  /// a worker picked it up: its remaining deadline budget could not
  /// cover the observed service time, so evaluating it would only have
  /// produced a late answer (see serve::QueryServer's shed policy).
  /// Distinct from kResourceExhausted (rejected at admission, queue
  /// full) so callers and telemetry can tell the two apart.
  kShedWhileQueued,
};

/// True for codes a bounded retry-with-backoff may recover from
/// (kUnavailable and kCorrupted; everything else fails fast).
bool StatusCodeIsRetryable(StatusCode code);

/// Returns the canonical name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus a human-readable message.
///
/// The OK status carries no allocation; error statuses carry a message.
///
/// [[nodiscard]]: a dropped Status is a silently lost error, so every
/// function returning one by value must have its result checked (or
/// explicitly discarded with a cast and a comment). The build enforces
/// this with -Werror=unused-result.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corrupted(std::string msg) {
    return Status(StatusCode::kCorrupted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ShedWhileQueued(std::string msg) {
    return Status(StatusCode::kShedWhileQueued, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T. Accessing the value of an errored Result
/// aborts, so callers must check ok() first (ValueOrDie semantics).
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const IRBUF_LIFETIME_BOUND { return status_; }

  /// The contained value; undefined behaviour if !ok().
  /// lifetimebound: the reference dies with the Result it came from.
  const T& value() const& IRBUF_LIFETIME_BOUND { return *value_; }
  T& value() & IRBUF_LIFETIME_BOUND { return *value_; }
  T&& value() && IRBUF_LIFETIME_BOUND { return std::move(*value_); }

  /// The contained value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status out of the current function.
#define IRBUF_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::irbuf::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace irbuf

#endif  // IRBUF_UTIL_STATUS_H_
