// ResilientReader: the one retry loop shared by BufferManager and
// serve::ConcurrentBufferPool. Wraps a page-read callback with
//
//   1. a circuit-breaker gate (fail fast while the device is down),
//   2. bounded retry with exponential backoff + jitter for retryable
//      codes (kUnavailable, kCorrupted — see StatusCodeIsRetryable),
//   3. metric accounting (fault.retries, fault.retry_success, ...).
//
// Disabled (the default) it is a single pass-through call with zero
// added branches on the read result path, which is what keeps p=0 runs
// bit-identical to a tree without the fault layer.
//
// Thread safety: Read() is called concurrently by the serving pool's
// workers. The breaker locks internally, counters are relaxed atomics,
// and the per-call backoff schedule seeds from (seed, page, call tick)
// so no generator state is shared.

#ifndef IRBUF_FAULT_RESILIENT_H_
#define IRBUF_FAULT_RESILIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "fault/backoff.h"
#include "fault/circuit_breaker.h"
#include "obs/metrics.h"
#include "storage/types.h"
#include "util/status.h"

namespace irbuf::fault {

struct ResilienceOptions {
  /// Master switch; false = Read() is a bare pass-through.
  bool enabled = false;
  BackoffPolicy backoff;
  bool breaker_enabled = true;
  BreakerOptions breaker;
  /// Seeds the per-call jitter schedules.
  uint64_t seed = 1;
  /// False lets unit tests exercise the schedule without real delays
  /// (delays are still drawn and accounted, just not slept).
  bool sleep_on_backoff = true;
};

/// Per-call accounting, for callers that tag retries into a
/// QueryTracer (which is not thread-shared, so the reader cannot own
/// it).
struct ReadOutcome {
  /// Read attempts made (>= 1 unless the breaker rejected).
  uint32_t attempts = 0;
  /// Microseconds of backoff delay drawn across the retries.
  uint64_t backoff_us = 0;
  bool rejected_by_breaker = false;
};

class ResilientReader {
 public:
  explicit ResilientReader(ResilienceOptions options,
                           ClockFn breaker_clock = nullptr);

  ResilientReader(const ResilientReader&) = delete;
  ResilientReader& operator=(const ResilientReader&) = delete;

  using ReadFn = std::function<Status()>;

  /// Runs `read` for page `id` under the retry/breaker regime.
  /// Non-retryable errors (kNotFound, kIOError, ...) propagate
  /// unchanged on the first attempt; retryable ones surface only after
  /// the backoff schedule exhausts. A breaker rejection returns
  /// kUnavailable without invoking `read` at all.
  Status Read(PageId id, const ReadFn& read,
              ReadOutcome* outcome = nullptr);

  /// Resolves metric handles (fault.retries, fault.retry_success,
  /// fault.retries_exhausted, fault.corrupted_reads,
  /// fault.breaker_trips, fault.breaker_rejects). Pass nullptr to
  /// unbind.
  void BindMetrics(obs::MetricsRegistry* registry);

  bool enabled() const { return options_.enabled; }
  const ResilienceOptions& options() const { return options_; }
  /// Null when the breaker is disabled or resilience is off.
  const CircuitBreaker* breaker() const { return breaker_.get(); }

  uint64_t total_retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  uint64_t retries_exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  uint64_t corrupted_reads() const {
    return corrupted_.load(std::memory_order_relaxed);
  }

 private:
  const ResilienceOptions options_;
  std::unique_ptr<CircuitBreaker> breaker_;

  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> exhausted_{0};
  std::atomic<uint64_t> corrupted_{0};
  std::atomic<uint64_t> call_tick_{0};

  struct MetricHandles {
    obs::Counter* retries = nullptr;
    obs::Counter* retry_success = nullptr;
    obs::Counter* retries_exhausted = nullptr;
    obs::Counter* corrupted_reads = nullptr;
    obs::Counter* breaker_trips = nullptr;
    obs::Counter* breaker_rejects = nullptr;
  };
  MetricHandles metrics_;
};

}  // namespace irbuf::fault

#endif  // IRBUF_FAULT_RESILIENT_H_
