#include "fault/backoff.h"

#include <chrono>
#include <thread>

namespace irbuf::fault {

uint64_t MonotonicNowUs() {
  // The fault layer's blessed clock read: everything else in scope
  // must come through MonotonicNowUs / util's MonotonicNowNs.
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now()  // irbuf-lint: allow(raw-clock)
              .time_since_epoch())
          .count());
}

void SleepUs(uint64_t us) {
  if (us == 0) return;
  // The tree's single raw sleep: everything else must come through
  // SleepUs so waits stay auditable.
  std::this_thread::sleep_for(  // irbuf-lint: allow(raw-sleep)
      std::chrono::microseconds(us));
}

}  // namespace irbuf::fault
