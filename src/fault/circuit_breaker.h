// CircuitBreaker: per-device fail-fast guard in front of the retry
// path. Retry-with-backoff is the right answer to an occasional
// transient error, but when a device is outright down every retried
// read burns its full backoff schedule before failing. The breaker
// watches a sliding window of outcomes and, past an error-rate
// threshold, "trips" open: reads fail immediately with kUnavailable
// (no device touch, no backoff). After a cooldown it goes half-open and
// lets a few probe reads through; enough consecutive successes close it
// again, any failure re-opens it.
//
//   closed --(error rate >= threshold over window)--> open
//   open   --(cooldown elapsed)-------------------> half-open
//   half-open --(probe failure)-------------------> open
//   half-open --(N consecutive probe successes)---> closed
//
// Half-open admits ONE probe at a time: the caller that wins
// AllowRequest owns the probe until it records an outcome, and every
// concurrent caller fails fast (counted as a reject). Without that
// gate, a burst of callers arriving right after the cooldown would all
// hammer a device that is still likely down — the probe's whole point
// is to risk exactly one request on it.
//
// Time is injected as a microsecond clock callback so tests drive the
// state machine deterministically; the default reads the steady clock.

#ifndef IRBUF_FAULT_CIRCUIT_BREAKER_H_
#define IRBUF_FAULT_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace irbuf::fault {

enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

struct BreakerOptions {
  /// Outcomes tracked in the sliding window.
  uint32_t window = 16;
  /// Error fraction over the window that trips the breaker.
  double trip_error_rate = 0.5;
  /// No tripping before this many outcomes are in the window (a single
  /// early error must not open the circuit).
  uint32_t min_samples = 8;
  /// Microseconds open before probing (half-open) begins.
  uint64_t open_cooldown_us = 5000;
  /// Consecutive half-open successes required to close.
  uint32_t half_open_successes = 2;
};

/// Monotonic microsecond clock; injectable for deterministic tests.
using ClockFn = std::function<uint64_t()>;

class CircuitBreaker {
 public:
  /// `clock` defaults to the process steady clock when null.
  explicit CircuitBreaker(BreakerOptions options, ClockFn clock = nullptr);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Gate before touching the device. False = fail fast with
  /// kUnavailable and do not call Record*. Open->half-open promotion
  /// happens here when the cooldown has elapsed; in half-open, exactly
  /// one caller holds the probe slot at a time (the winner MUST call
  /// RecordSuccess or RecordFailure, or probing wedges).
  bool AllowRequest();

  /// Outcome of a request that AllowRequest admitted. "Success" means
  /// the device responded (a clean read); "failure" is any device-level
  /// error, retries exhausted included.
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  /// Times the breaker transitioned closed/half-open -> open.
  uint64_t trips() const;
  /// Requests rejected while open.
  uint64_t rejects() const;

  /// Counter handles bumped at trip/reject time (under the breaker's
  /// own mutex, so the metric and the internal count never diverge).
  /// Either may be null.
  void BindMetrics(obs::Counter* trips, obs::Counter* rejects);

 private:
  void TransitionTo(BreakerState next, uint64_t now_us)
      IRBUF_REQUIRES(mu_);
  double ErrorRate() const IRBUF_REQUIRES(mu_);

  const BreakerOptions options_;
  const ClockFn clock_;

  mutable Mutex mu_;
  BreakerState state_ IRBUF_GUARDED_BY(mu_) = BreakerState::kClosed;
  /// Ring buffer of the last `window` outcomes (true = failure).
  std::vector<bool> outcomes_ IRBUF_GUARDED_BY(mu_);
  uint32_t next_slot_ IRBUF_GUARDED_BY(mu_) = 0;
  uint32_t samples_ IRBUF_GUARDED_BY(mu_) = 0;
  uint32_t failures_ IRBUF_GUARDED_BY(mu_) = 0;
  uint64_t opened_at_us_ IRBUF_GUARDED_BY(mu_) = 0;
  uint32_t half_open_streak_ IRBUF_GUARDED_BY(mu_) = 0;
  /// Half-open probe slot: set by the AllowRequest winner, cleared by
  /// its Record* (or by leaving half-open).
  bool probe_in_flight_ IRBUF_GUARDED_BY(mu_) = false;
  uint64_t trips_ IRBUF_GUARDED_BY(mu_) = 0;
  uint64_t rejects_ IRBUF_GUARDED_BY(mu_) = 0;
  obs::Counter* trips_metric_ IRBUF_GUARDED_BY(mu_) = nullptr;
  obs::Counter* rejects_metric_ IRBUF_GUARDED_BY(mu_) = nullptr;
};

}  // namespace irbuf::fault

#endif  // IRBUF_FAULT_CIRCUIT_BREAKER_H_
