#include "fault/circuit_breaker.h"

#include "fault/backoff.h"

namespace irbuf::fault {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options, ClockFn clock)
    : options_(options),
      clock_(clock ? std::move(clock) : ClockFn(&MonotonicNowUs)) {
  MutexLock lock(mu_);
  outcomes_.assign(options_.window, false);
}

void CircuitBreaker::TransitionTo(BreakerState next, uint64_t now_us) {
  if (next == BreakerState::kOpen) {
    ++trips_;
    opened_at_us_ = now_us;
    if (trips_metric_ != nullptr) trips_metric_->Add(1);
  }
  if (next == BreakerState::kHalfOpen || next == BreakerState::kClosed) {
    half_open_streak_ = 0;
  }
  probe_in_flight_ = false;
  if (next == BreakerState::kClosed) {
    // Fresh window: pre-trip history must not immediately re-trip.
    outcomes_.assign(options_.window, false);
    next_slot_ = 0;
    samples_ = 0;
    failures_ = 0;
  }
  state_ = next;
}

double CircuitBreaker::ErrorRate() const {
  return samples_ == 0
             ? 0.0
             : static_cast<double>(failures_) / static_cast<double>(samples_);
}

bool CircuitBreaker::AllowRequest() {
  MutexLock lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // One probe at a time: losers fail fast instead of piling onto a
      // device that is still likely down.
      if (probe_in_flight_) {
        ++rejects_;
        if (rejects_metric_ != nullptr) rejects_metric_->Add(1);
        return false;
      }
      probe_in_flight_ = true;
      return true;
    case BreakerState::kOpen: {
      const uint64_t now = clock_();
      if (now - opened_at_us_ >= options_.open_cooldown_us) {
        TransitionTo(BreakerState::kHalfOpen, now);
        probe_in_flight_ = true;  // The promoting caller is the probe.
        return true;
      }
      ++rejects_;
      if (rejects_metric_ != nullptr) rejects_metric_->Add(1);
      return false;
    }
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    probe_in_flight_ = false;  // The probe slot frees for the next caller.
    if (++half_open_streak_ >= options_.half_open_successes) {
      TransitionTo(BreakerState::kClosed, clock_());
    }
    return;
  }
  if (state_ != BreakerState::kClosed) return;
  if (samples_ >= options_.window) {
    if (outcomes_[next_slot_]) --failures_;
  } else {
    ++samples_;
  }
  outcomes_[next_slot_] = false;
  next_slot_ = (next_slot_ + 1) % options_.window;
}

void CircuitBreaker::RecordFailure() {
  MutexLock lock(mu_);
  const uint64_t now = clock_();
  if (state_ == BreakerState::kHalfOpen) {
    TransitionTo(BreakerState::kOpen, now);
    return;
  }
  if (state_ != BreakerState::kClosed) return;
  if (samples_ >= options_.window) {
    if (outcomes_[next_slot_]) --failures_;
  } else {
    ++samples_;
  }
  outcomes_[next_slot_] = true;
  ++failures_;
  next_slot_ = (next_slot_ + 1) % options_.window;
  if (samples_ >= options_.min_samples &&
      ErrorRate() >= options_.trip_error_rate) {
    TransitionTo(BreakerState::kOpen, now);
  }
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  MutexLock lock(mu_);
  return trips_;
}

uint64_t CircuitBreaker::rejects() const {
  MutexLock lock(mu_);
  return rejects_;
}

void CircuitBreaker::BindMetrics(obs::Counter* trips, obs::Counter* rejects) {
  MutexLock lock(mu_);
  trips_metric_ = trips;
  rejects_metric_ = rejects;
}

}  // namespace irbuf::fault
