#include "fault/resilient.h"

namespace irbuf::fault {

namespace {

uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

ResilientReader::ResilientReader(ResilienceOptions options,
                                 ClockFn breaker_clock)
    : options_(options) {
  if (options_.enabled && options_.breaker_enabled) {
    breaker_ = std::make_unique<CircuitBreaker>(options_.breaker,
                                                std::move(breaker_clock));
  }
}

void ResilientReader::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = MetricHandles{};
    if (breaker_) breaker_->BindMetrics(nullptr, nullptr);
    return;
  }
  metrics_.retries = registry->AddCounter(
      "fault.retries", "read attempts repeated after a retryable error");
  metrics_.retry_success = registry->AddCounter(
      "fault.retry_success", "reads that succeeded on a retry attempt");
  metrics_.retries_exhausted = registry->AddCounter(
      "fault.retries_exhausted",
      "reads that failed after the full backoff schedule");
  metrics_.corrupted_reads = registry->AddCounter(
      "fault.corrupted_reads", "read attempts failing checksum verification");
  metrics_.breaker_trips = registry->AddCounter(
      "fault.breaker_trips", "circuit-breaker transitions to open");
  metrics_.breaker_rejects = registry->AddCounter(
      "fault.breaker_rejects", "reads rejected fail-fast by an open breaker");
  if (breaker_) {
    breaker_->BindMetrics(metrics_.breaker_trips, metrics_.breaker_rejects);
  }
}

Status ResilientReader::Read(PageId id, const ReadFn& read,
                             ReadOutcome* outcome) {
  if (!options_.enabled) {
    if (outcome != nullptr) outcome->attempts = 1;
    return read();
  }
  if (breaker_ && !breaker_->AllowRequest()) {
    if (outcome != nullptr) outcome->rejected_by_breaker = true;
    return Status::Unavailable("circuit breaker open: read rejected");
  }
  const uint64_t tick = call_tick_.fetch_add(1, std::memory_order_relaxed);
  ExponentialBackoff backoff(options_.backoff,
                             Mix(options_.seed ^ id.Pack()) ^ Mix(tick));
  uint32_t attempts = 0;
  Status status;
  for (;;) {
    ++attempts;
    status = read();
    if (status.ok()) break;
    if (status.code() == StatusCode::kCorrupted) {
      corrupted_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.corrupted_reads != nullptr) {
        metrics_.corrupted_reads->Add(1);
      }
    }
    if (!StatusCodeIsRetryable(status.code()) || !backoff.CanRetry()) break;
    const uint64_t delay_us = backoff.NextDelayUs();
    if (outcome != nullptr) outcome->backoff_us += delay_us;
    if (options_.sleep_on_backoff) SleepUs(delay_us);
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.retries != nullptr) metrics_.retries->Add(1);
  }
  if (outcome != nullptr) outcome->attempts = attempts;
  if (status.ok()) {
    if (attempts > 1 && metrics_.retry_success != nullptr) {
      metrics_.retry_success->Add(1);
    }
    if (breaker_) breaker_->RecordSuccess();
    return status;
  }
  if (StatusCodeIsRetryable(status.code())) {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.retries_exhausted != nullptr) {
      metrics_.retries_exhausted->Add(1);
    }
  }
  if (breaker_) breaker_->RecordFailure();
  return status;
}

}  // namespace irbuf::fault
