// FaultInjector: turns a FaultSpec into per-read decisions for
// SimulatedDisk. Determinism contract:
//
//  - kPermanentBadPage is a pure function of (seed, rule, page), so a
//    bad page stays bad across reads, retries and threads — exactly like
//    failed media.
//  - The per-read kinds (transient, bit-flip, latency) draw from a hash
//    of (seed, rule, page, tick) where tick is a process-wide atomic
//    read counter: single-threaded runs are bit-reproducible from the
//    seed, and concurrent runs stay race-free (the interleaving, not the
//    generator, is what varies).
//  - A rule's max_faults cap is enforced with an atomic budget, which
//    makes "fails exactly K times, then succeeds" retry tests exact.
//
// Consult() is const and thread-safe; SimulatedDisk calls it from the
// serving subsystem's worker threads.

#ifndef IRBUF_FAULT_FAULT_INJECTOR_H_
#define IRBUF_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "fault/fault_spec.h"
#include "storage/types.h"

namespace irbuf::fault {

/// What the injector decided for one read attempt.
struct FaultDecision {
  enum class Outcome : uint8_t {
    kNone,       // read proceeds untouched
    kTransient,  // fail this attempt with kUnavailable
    kPermanent,  // fail every attempt with kIOError
    kBitFlip,    // flip bit `flip_bit` of the image copy before decode
  };

  Outcome outcome = Outcome::kNone;
  /// Product of every matching latency rule's multiplier (1.0 = no
  /// spike). Reported even alongside a failure: the device spent the
  /// time before erroring.
  double latency_multiplier = 1.0;
  /// kBitFlip only: absolute bit index into the page image (the caller
  /// reduces it modulo the image size).
  uint64_t flip_bit = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Decides the fate of one read attempt of `id`. When several rules
  /// fire, the most severe failure wins (permanent > bit-flip >
  /// transient); latency multipliers compose independently.
  FaultDecision Consult(PageId id) const;

  const FaultSpec& spec() const { return spec_; }

  /// Total faults injected per kind (latency spikes included), for the
  /// chaos harness's accounting.
  uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  uint64_t total_injected() const;

 private:
  /// True when rule `i` still has budget; claims one unit if so.
  bool ClaimBudget(size_t i) const;

  FaultSpec spec_;
  /// Remaining per-rule budgets (max_faults; ~0 when uncapped).
  mutable std::vector<std::atomic<uint64_t>> budgets_;
  /// Read sequence number feeding the per-read hash.
  mutable std::atomic<uint64_t> tick_{0};
  mutable std::array<std::atomic<uint64_t>, 4> injected_{};
};

}  // namespace irbuf::fault

#endif  // IRBUF_FAULT_FAULT_INJECTOR_H_
