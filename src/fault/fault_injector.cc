#include "fault/fault_injector.h"

#include <limits>

namespace irbuf::fault {

namespace {

/// SplitMix64: the one-shot mixer used everywhere a stateless hash of a
/// few integers is needed (same finalizer as storage::PageIdHash).
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

uint64_t Hash3(uint64_t a, uint64_t b, uint64_t c) {
  return Mix(Mix(Mix(a) ^ b) ^ c);
}

/// Uniform double in [0, 1) from the top 53 bits of a hash.
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) /
         static_cast<double>(1ULL << 53);
}

}  // namespace

FaultInjector::FaultInjector(FaultSpec spec)
    : spec_(std::move(spec)), budgets_(spec_.rules.size()) {
  for (size_t i = 0; i < spec_.rules.size(); ++i) {
    budgets_[i].store(spec_.rules[i].max_faults == 0
                          ? std::numeric_limits<uint64_t>::max()
                          : spec_.rules[i].max_faults,
                      std::memory_order_relaxed);
  }
}

bool FaultInjector::ClaimBudget(size_t i) const {
  uint64_t remaining = budgets_[i].load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (budgets_[i].compare_exchange_weak(remaining, remaining - 1,
                                          std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

FaultDecision FaultInjector::Consult(PageId id) const {
  FaultDecision decision;
  if (spec_.rules.empty()) return decision;
  const uint64_t pack = id.Pack();
  const uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed);
  auto severity = [](FaultDecision::Outcome o) {
    switch (o) {
      case FaultDecision::Outcome::kNone:
        return 0;
      case FaultDecision::Outcome::kTransient:
        return 1;
      case FaultDecision::Outcome::kBitFlip:
        return 2;
      case FaultDecision::Outcome::kPermanent:
        return 3;
    }
    return 0;
  };
  for (size_t i = 0; i < spec_.rules.size(); ++i) {
    const FaultRule& rule = spec_.rules[i];
    if (!rule.Matches(id)) continue;
    // Permanent decisions hash only (seed, rule, page): a bad page is
    // bad on every read. The others mix in the read tick so each
    // attempt rolls fresh.
    const bool per_page = rule.kind == FaultKind::kPermanentBadPage;
    const uint64_t h =
        per_page ? Hash3(spec_.seed, i, pack)
                 : Mix(Hash3(spec_.seed, i, pack) ^ Mix(tick));
    if (ToUnit(h) >= rule.probability) continue;
    if (!per_page && !ClaimBudget(i)) continue;
    injected_[static_cast<size_t>(rule.kind)].fetch_add(
        1, std::memory_order_relaxed);
    switch (rule.kind) {
      case FaultKind::kTransientRead:
        if (severity(FaultDecision::Outcome::kTransient) >
            severity(decision.outcome)) {
          decision.outcome = FaultDecision::Outcome::kTransient;
        }
        break;
      case FaultKind::kPermanentBadPage:
        decision.outcome = FaultDecision::Outcome::kPermanent;
        break;
      case FaultKind::kBitFlip:
        if (severity(FaultDecision::Outcome::kBitFlip) >
            severity(decision.outcome)) {
          decision.outcome = FaultDecision::Outcome::kBitFlip;
          decision.flip_bit = Mix(h);
        }
        break;
      case FaultKind::kLatencySpike:
        decision.latency_multiplier *= rule.latency_multiplier;
        break;
    }
  }
  return decision;
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (const auto& c : injected_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace irbuf::fault
