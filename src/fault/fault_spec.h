// FaultSpec: the declarative description of a fault-injection campaign.
// A spec is a seed plus a list of rules; each rule targets one fault
// kind (transient read error, permanently bad page, silent bit-flip,
// latency spike) at a probability, optionally restricted to a term/page
// range and capped at a maximum number of injections. The spec is what
// the CLI's --fault-spec flag parses and what the chaos harness
// enumerates, so the whole campaign is reproducible from one line of
// JSON.

#ifndef IRBUF_FAULT_FAULT_SPEC_H_
#define IRBUF_FAULT_FAULT_SPEC_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace irbuf::fault {

/// What a matching rule does to a page read.
enum class FaultKind : uint8_t {
  /// The read fails with kUnavailable; an immediate retry may succeed.
  kTransientRead,
  /// The page is bad media: every read fails with kIOError, forever.
  kPermanentBadPage,
  /// One bit of the compressed image is flipped in flight; the CRC32C
  /// verify turns this into kCorrupted.
  kBitFlip,
  /// The read succeeds but reports a device-delay multiplier for the
  /// cost model (latency spike).
  kLatencySpike,
};

const char* FaultKindName(FaultKind kind);

/// One injection rule. A rule fires for reads of pages inside
/// [term_lo, term_hi] x [page_lo, page_hi] with probability
/// `probability` per read (kPermanentBadPage: per page, decided once).
struct FaultRule {
  FaultKind kind = FaultKind::kTransientRead;
  double probability = 0.0;
  TermId term_lo = 0;
  TermId term_hi = std::numeric_limits<TermId>::max();
  uint32_t page_lo = 0;
  uint32_t page_hi = std::numeric_limits<uint32_t>::max();
  /// Injections stop after this many faults from this rule; 0 = no cap.
  /// A cap makes "fails K times, then succeeds" retry tests exact.
  uint64_t max_faults = 0;
  /// kLatencySpike only: device-delay multiplier reported to the caller.
  double latency_multiplier = 10.0;
  /// Doc-partitioned serving only: restricts the rule to one shard's
  /// disk (-1 = every shard). Each shard owns a separate DiskSim, so
  /// the selector is applied when the per-shard injector is built (see
  /// FilterForShard), not in Matches — a PageId alone cannot tell
  /// shards apart.
  int32_t shard = -1;

  bool Matches(PageId id) const {
    return id.term >= term_lo && id.term <= term_hi &&
           id.page_no >= page_lo && id.page_no <= page_hi;
  }
};

/// A full campaign: deterministic seed plus rules evaluated in order.
struct FaultSpec {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  /// Round-trippable JSON:
  ///   {"seed":42,"rules":[{"kind":"transient","p":0.01,...}]}
  std::string ToJson() const;
};

/// Parses the JSON dialect emitted by FaultSpec::ToJson. Accepted rule
/// keys: kind ("transient" | "bad_page" | "bit_flip" | "latency"), p,
/// term_lo, term_hi, page_lo, page_hi, max_faults, latency_mult, shard;
/// omitted keys keep their defaults. Unknown keys and malformed JSON are
/// kInvalidArgument so a typoed campaign fails loudly instead of running
/// fault-free.
Result<FaultSpec> ParseFaultSpec(std::string_view json);

/// The sub-campaign `shard` sees: rules targeting every shard plus the
/// rules targeting exactly this one, with the selector cleared (the
/// per-shard injector has no notion of shards). Same seed, so a
/// single-shard run of an all-shards spec reproduces the sharded run's
/// fault stream on that shard's pages.
FaultSpec FilterForShard(const FaultSpec& spec, size_t shard);

}  // namespace irbuf::fault

#endif  // IRBUF_FAULT_FAULT_SPEC_H_
