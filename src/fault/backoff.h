// Exponential backoff with decorrelated jitter, plus SleepUs — the ONE
// place in the tree allowed to call a raw sleep primitive. The raw-sleep
// lint rule (tools/lint/irbuf_lint.py) forbids sleep_for/sleep_until/
// usleep/nanosleep everywhere else so that every wait is either a
// condition-variable wait with a predicate or an auditable backoff
// delay that tests can account for.

#ifndef IRBUF_FAULT_BACKOFF_H_
#define IRBUF_FAULT_BACKOFF_H_

#include <cstdint>

#include "util/rng.h"

namespace irbuf::fault {

/// Retry/backoff parameters. The defaults give delays of roughly
/// 100us, 200us, 400us (+/- jitter) before giving up — tuned to the
/// simulated device, where a transient error clears within one tick.
struct BackoffPolicy {
  /// Retries after the first attempt (so max_retries + 1 attempts total).
  uint32_t max_retries = 3;
  uint64_t initial_delay_us = 100;
  double multiplier = 2.0;
  uint64_t max_delay_us = 10000;
  /// Fraction of the nominal delay randomized away: the drawn delay is
  /// uniform in [nominal * (1 - jitter), nominal]. 0 = fully
  /// deterministic schedule.
  double jitter = 0.5;
};

/// The delay schedule for one operation's retries. Deterministic from
/// (policy, seed): two schedules with equal inputs produce identical
/// delays, which tests/buffer/backoff_test.cc pins down.
class ExponentialBackoff {
 public:
  ExponentialBackoff(const BackoffPolicy& policy, uint64_t seed)
      : policy_(policy), rng_(seed, /*stream=*/0x5c471e5ULL) {}

  /// True while another retry is permitted.
  bool CanRetry() const { return attempts_ < policy_.max_retries; }

  /// Draws the next delay and advances the schedule. Call only when
  /// CanRetry().
  uint64_t NextDelayUs() {
    uint64_t nominal = policy_.initial_delay_us;
    for (uint32_t i = 0; i < attempts_; ++i) {
      nominal = static_cast<uint64_t>(
          static_cast<double>(nominal) * policy_.multiplier);
      if (nominal >= policy_.max_delay_us) {
        nominal = policy_.max_delay_us;
        break;
      }
    }
    if (nominal > policy_.max_delay_us) nominal = policy_.max_delay_us;
    ++attempts_;
    if (policy_.jitter <= 0.0 || nominal == 0) return nominal;
    const double floor =
        static_cast<double>(nominal) * (1.0 - policy_.jitter);
    const double span = static_cast<double>(nominal) - floor;
    return static_cast<uint64_t>(floor + span * rng_.NextDouble());
  }

  uint32_t attempts() const { return attempts_; }

 private:
  BackoffPolicy policy_;
  Pcg32 rng_;
  uint32_t attempts_ = 0;
};

/// Blocks the calling thread for `us` microseconds. Every backoff (and
/// the serving pool's simulated device delay) routes through here; no
/// other translation unit may sleep.
void SleepUs(uint64_t us);

/// Microseconds on the process steady clock — the default time source
/// for deadlines and the circuit breaker's cooldown.
uint64_t MonotonicNowUs();

}  // namespace irbuf::fault

#endif  // IRBUF_FAULT_BACKOFF_H_
