#include "fault/fault_spec.h"

#include <cctype>
#include <cstdlib>

#include "obs/json.h"
#include "util/str.h"

namespace irbuf::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransientRead:
      return "transient";
    case FaultKind::kPermanentBadPage:
      return "bad_page";
    case FaultKind::kBitFlip:
      return "bit_flip";
    case FaultKind::kLatencySpike:
      return "latency";
  }
  return "unknown";
}

std::string FaultSpec::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("seed").UInt(seed);
  w.Key("rules").BeginArray();
  for (const FaultRule& r : rules) {
    w.BeginObject();
    w.Key("kind").Str(FaultKindName(r.kind));
    w.Key("p").Num(r.probability);
    w.Key("term_lo").UInt(r.term_lo);
    w.Key("term_hi").UInt(r.term_hi);
    w.Key("page_lo").UInt(r.page_lo);
    w.Key("page_hi").UInt(r.page_hi);
    w.Key("max_faults").UInt(r.max_faults);
    if (r.kind == FaultKind::kLatencySpike) {
      w.Key("latency_mult").Num(r.latency_multiplier);
    }
    if (r.shard >= 0) {
      w.Key("shard").UInt(static_cast<uint64_t>(r.shard));
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

namespace {

/// Hand-rolled scanner for the flat spec dialect: one object holding
/// scalars and one array of scalar-only objects. Deliberately not a
/// general JSON parser — the spec grammar is fixed, and rejecting
/// anything outside it is the point (a typoed key must not silently run
/// the campaign fault-free).
class SpecScanner {
 public:
  explicit SpecScanner(std::string_view in) : in_(in) {}

  void SkipWs() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < in_.size() && in_[pos_] == c;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= in_.size();
  }

  /// Reads a double-quoted string (no escape support: spec strings are
  /// bare identifiers).
  Result<std::string> String() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < in_.size() && in_[pos_] != '"') {
      if (in_[pos_] == '\\') return Err("escapes not allowed in spec");
      out.push_back(in_[pos_++]);
    }
    if (!Consume('"')) return Err("unterminated string");
    return out;
  }

  Result<double> Number() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '-' || in_[pos_] == '+' || in_[pos_] == '.' ||
            in_[pos_] == 'e' || in_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a number");
    std::string text(in_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return Err("malformed number");
    return value;
  }

  Status Err(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("fault spec: %s at offset %zu", what, pos_));
  }

 private:
  std::string_view in_;
  size_t pos_ = 0;
};

Result<FaultKind> KindFromName(const std::string& name) {
  if (name == "transient") return FaultKind::kTransientRead;
  if (name == "bad_page") return FaultKind::kPermanentBadPage;
  if (name == "bit_flip") return FaultKind::kBitFlip;
  if (name == "latency") return FaultKind::kLatencySpike;
  return Status::InvalidArgument(
      StrFormat("fault spec: unknown kind \"%s\"", name.c_str()));
}

Result<FaultRule> ParseRule(SpecScanner& s) {
  if (!s.Consume('{')) return s.Err("expected '{' to open a rule");
  FaultRule rule;
  bool first = true;
  while (!s.Peek('}')) {
    if (!first && !s.Consume(',')) return s.Err("expected ','");
    first = false;
    Result<std::string> key = s.String();
    if (!key.ok()) return key.status();
    if (!s.Consume(':')) return s.Err("expected ':'");
    if (key.value() == "kind") {
      Result<std::string> name = s.String();
      if (!name.ok()) return name.status();
      Result<FaultKind> kind = KindFromName(name.value());
      if (!kind.ok()) return kind.status();
      rule.kind = kind.value();
      continue;
    }
    Result<double> num = s.Number();
    if (!num.ok()) return num.status();
    const double v = num.value();
    if (key.value() == "p") {
      if (v < 0.0 || v > 1.0) return s.Err("p outside [0, 1]");
      rule.probability = v;
    } else if (key.value() == "term_lo") {
      rule.term_lo = static_cast<TermId>(v);
    } else if (key.value() == "term_hi") {
      rule.term_hi = static_cast<TermId>(v);
    } else if (key.value() == "page_lo") {
      rule.page_lo = static_cast<uint32_t>(v);
    } else if (key.value() == "page_hi") {
      rule.page_hi = static_cast<uint32_t>(v);
    } else if (key.value() == "max_faults") {
      rule.max_faults = static_cast<uint64_t>(v);
    } else if (key.value() == "latency_mult") {
      if (v < 1.0) return s.Err("latency_mult below 1");
      rule.latency_multiplier = v;
    } else if (key.value() == "shard") {
      if (v < 0.0) return s.Err("shard below 0");
      rule.shard = static_cast<int32_t>(v);
    } else {
      return Status::InvalidArgument(StrFormat(
          "fault spec: unknown rule key \"%s\"", key.value().c_str()));
    }
  }
  if (!s.Consume('}')) return s.Err("expected '}'");
  return rule;
}

}  // namespace

Result<FaultSpec> ParseFaultSpec(std::string_view json) {
  SpecScanner s(json);
  if (!s.Consume('{')) return s.Err("expected '{'");
  FaultSpec spec;
  bool first = true;
  while (!s.Peek('}')) {
    if (!first && !s.Consume(',')) return s.Err("expected ','");
    first = false;
    Result<std::string> key = s.String();
    if (!key.ok()) return key.status();
    if (!s.Consume(':')) return s.Err("expected ':'");
    if (key.value() == "seed") {
      Result<double> num = s.Number();
      if (!num.ok()) return num.status();
      spec.seed = static_cast<uint64_t>(num.value());
    } else if (key.value() == "rules") {
      if (!s.Consume('[')) return s.Err("expected '['");
      bool first_rule = true;
      while (!s.Peek(']')) {
        if (!first_rule && !s.Consume(',')) return s.Err("expected ','");
        first_rule = false;
        Result<FaultRule> rule = ParseRule(s);
        if (!rule.ok()) return rule.status();
        spec.rules.push_back(rule.value());
      }
      if (!s.Consume(']')) return s.Err("expected ']'");
    } else {
      return Status::InvalidArgument(StrFormat(
          "fault spec: unknown key \"%s\"", key.value().c_str()));
    }
  }
  if (!s.Consume('}')) return s.Err("expected '}'");
  if (!s.AtEnd()) return s.Err("trailing characters");
  return spec;
}

FaultSpec FilterForShard(const FaultSpec& spec, size_t shard) {
  FaultSpec out;
  out.seed = spec.seed;
  for (const FaultRule& r : spec.rules) {
    if (r.shard >= 0 && static_cast<size_t>(r.shard) != shard) continue;
    FaultRule kept = r;
    kept.shard = -1;
    out.rules.push_back(kept);
  }
  return out;
}

}  // namespace irbuf::fault
